package mpi

import (
	"fmt"
	"net"
)

// A distributed world is the cross-process variant of NewWorld: every OS
// process calls JoinWorld with the same size and address directory but
// its own rank, and the resulting Worlds exchange frames over real TCP
// between processes. Communicator ids are assigned by local call
// sequence, so as long as every process performs the same NewComm /
// NewIntercomm calls in the same order (the mpidrun master and workers
// do), handles line up across processes without any extra negotiation.

// Endpoint is a pre-opened transport listener. Opening the listener
// before the world exists lets a worker advertise its address during the
// rendezvous, then hand the same socket to JoinWorld — no window where a
// peer could dial an address nobody is bound to.
type Endpoint struct {
	ln net.Listener
}

// ListenEndpoint opens a loopback transport endpoint on an ephemeral
// port.
func ListenEndpoint() (*Endpoint, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, fmt.Errorf("mpi: endpoint listen: %w", err)
	}
	return &Endpoint{ln: ln}, nil
}

// Addr returns the endpoint's dialable address.
func (e *Endpoint) Addr() string { return e.ln.Addr().String() }

// Close releases the endpoint; only needed when it was never passed to
// JoinWorld (which takes ownership of the socket).
func (e *Endpoint) Close() error { return e.ln.Close() }

// JoinWorld creates this process's member of a distributed world of n
// ranks: rank self is hosted here on ep's listener, and addrs maps every
// world rank (including self) to its transport address, as exchanged by
// the rendezvous. Only rank self's Comm handles are usable in this
// process; handles for remote ranks exist (the communicator bookkeeping
// is identical to NewWorld's) but must not be driven locally.
//
// The world always uses the TCP transport — WithTCP is implied — and
// fault injection (WithFaults) is rejected: the injector is an
// in-process device, while real process death is reported from outside
// via DeclareDead.
func JoinWorld(n, self int, ep *Endpoint, addrs []string, opts ...Option) (*World, error) {
	if n <= 0 {
		return nil, fmt.Errorf("mpi: world size %d", n)
	}
	if self < 0 || self >= n {
		return nil, fmt.Errorf("mpi: joining rank %d of world size %d", self, n)
	}
	if ep == nil {
		return nil, fmt.Errorf("mpi: joining rank %d: nil endpoint", self)
	}
	if len(addrs) != n {
		return nil, fmt.Errorf("mpi: directory has %d addresses for world size %d", len(addrs), n)
	}
	var cfg config
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.inj != nil {
		return nil, fmt.Errorf("mpi: fault injection is in-process only; use DeclareDead for real process death")
	}
	tr, err := newDistTCPTransport(n, self, ep.ln, addrs, cfg.link, cfg.sendTimeout, cfg.onRetry, cfg.eng)
	if err != nil {
		return nil, err
	}
	local := make([]bool, n)
	local[self] = true
	w := &World{
		size:   n,
		tr:     tr,
		local:  local,
		comms:  make(map[uint32][]*Comm),
		nextID: 1,
	}
	w.initChunking(cfg.eng)
	w.procs = make([]*proc, n)
	for i := 0; i < n; i++ {
		w.procs[i] = &proc{world: w, rank: i}
	}
	// World communicator gets id 0, as in NewWorld.
	w.makeComm(0, identityRanks(n))
	w.closeWG.Add(1)
	go w.route(self)
	return w, nil
}

// DeclareDead marks a world rank as failed from outside the transport: a
// process launcher calls it when a worker OS process exits, so receivers
// blocked on that peer fail with ErrRankDead instead of waiting out
// their deadlines. It is the cross-process analogue of the fault
// injector's kill notification and is safe to call at any time, on any
// world.
func (w *World) DeclareDead(worldRank int) { w.markDead(worldRank) }
