package trace

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// A nil tracer must be a total no-op: every method usable without panics
// or allocations on the caller's hot path.
func TestNilTracerSafe(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Error("nil tracer reports enabled")
	}
	b := tr.Rank(3)
	if b != nil {
		t.Fatalf("nil tracer returned non-nil buf")
	}
	if got := b.Start(); !got.IsZero() {
		t.Errorf("nil buf Start = %v, want zero time", got)
	}
	b.Span(1, "x", "c", time.Now(), nil)
	b.Instant(1, "x", "c", nil)
	tr.SetProcessName(0, "p")
	tr.SetThreadName(0, 1, "t")
	if evs := tr.Events(); evs != nil {
		t.Errorf("nil tracer has %d events", len(evs))
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
}

func TestEventsOrderAndShape(t *testing.T) {
	tr := New()
	tr.SetProcessName(0, "worker 0")
	tr.SetThreadName(0, 1, "send")
	b := tr.Rank(0)
	s := b.Start()
	time.Sleep(2 * time.Millisecond) // separate the two timestamps
	b.Instant(2, "late", "cat", map[string]any{"k": 1})
	b.Span(1, "early", "cat", s, nil)
	evs := tr.Events()
	if len(evs) != 4 {
		t.Fatalf("got %d events, want 4", len(evs))
	}
	// Metadata first, then body sorted by timestamp.
	if evs[0].Ph != "M" || evs[1].Ph != "M" {
		t.Errorf("metadata not first: %+v %+v", evs[0], evs[1])
	}
	if evs[2].Name != "early" || evs[2].Ph != "X" {
		t.Errorf("first body event = %+v, want span 'early'", evs[2])
	}
	if evs[3].Name != "late" || evs[3].Ph != "i" || evs[3].Scope != "t" {
		t.Errorf("second body event = %+v, want instant 'late'", evs[3])
	}
	if evs[2].TS > evs[3].TS {
		t.Errorf("events not time-ordered: %d > %d", evs[2].TS, evs[3].TS)
	}
}

// The emitted document must parse back as the Chrome trace_event JSON
// object form, spans keeping an explicit dur field even when zero.
func TestWriteFileValidTraceEventJSON(t *testing.T) {
	tr := New()
	tr.SetProcessName(1, "worker 1")
	b := tr.Rank(1)
	b.Span(10, "O0", "task", b.Start(), map[string]any{"round": 0})
	b.Instant(1, "spl.seal", "buffer", nil)
	path := filepath.Join(t.TempDir(), "out.json")
	if err := tr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}
	if len(doc.TraceEvents) != 3 {
		t.Fatalf("got %d traceEvents, want 3", len(doc.TraceEvents))
	}
	for _, ev := range doc.TraceEvents {
		for _, k := range []string{"name", "ph", "ts", "pid", "tid"} {
			if _, ok := ev[k]; !ok {
				t.Errorf("event %v missing %q", ev, k)
			}
		}
		if ev["ph"] == "X" {
			if _, ok := ev["dur"]; !ok {
				t.Errorf("span %v missing dur", ev)
			}
		}
	}
}

func TestEmptyTracerWritesEmptyArray(t *testing.T) {
	var buf bytes.Buffer
	if err := New().WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents == nil {
		t.Error("traceEvents is null, want []")
	}
}

// Many ranks and goroutines appending concurrently while Events snapshots:
// exercised under -race by CI.
func TestConcurrentAppendAndSnapshot(t *testing.T) {
	tr := New()
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			b := tr.Rank(r)
			for i := 0; i < 200; i++ {
				b.Instant(i%3, "e", "cat", nil)
			}
		}(r)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			tr.Events()
			tr.SetThreadName(i%4, 0, "control")
		}
	}()
	wg.Wait()
	evs := tr.Events()
	body := 0
	for _, e := range evs {
		if e.Ph != "M" {
			body++
		}
	}
	if body != 4*200 {
		t.Errorf("got %d body events, want %d", body, 4*200)
	}
}
