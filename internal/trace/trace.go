// Package trace records structured span events from a DataMPI run and
// serializes them in the Chrome trace_event JSON format, so a job's
// internals — task execution, SPL seals, shuffle transmits, RPL merges,
// spills, checkpoint commits, fault retries — can be inspected in
// chrome://tracing or Perfetto (ui.perfetto.dev).
//
// A nil *Tracer is a valid, disabled tracer: Rank on it returns a nil
// *Buf, and every *Buf method is a nil-safe no-op. Instrumented hot
// paths guard event construction behind a single nil pointer check, so
// the disabled path costs one branch and no allocation.
package trace

import (
	"encoding/json"
	"io"
	"os"
	"sort"
	"sync"
	"time"
)

// Event is one trace_event entry. Fields follow the Chrome trace-event
// format: ph "X" is a complete span (ts + dur), "i" an instant, "M"
// metadata (process/thread names). Timestamps are microseconds since the
// tracer was created.
type Event struct {
	Name  string         `json:"name"`
	Cat   string         `json:"cat,omitempty"`
	Ph    string         `json:"ph"`
	TS    int64          `json:"ts"`
	Dur   int64          `json:"dur"`
	PID   int            `json:"pid"`
	TID   int            `json:"tid"`
	Scope string         `json:"s,omitempty"` // instant scope: "t" (thread)
	Args  map[string]any `json:"args,omitempty"`
}

// Tracer collects events from many ranks. Each rank appends to its own
// buffer under its own lock, so tracing never serializes ranks against
// each other; the buffers are merged only when the trace is written out.
type Tracer struct {
	start time.Time

	mu   sync.Mutex
	bufs map[int]*Buf
	meta []Event
}

// New returns an enabled Tracer whose clock starts now.
func New() *Tracer {
	return &Tracer{start: time.Now(), bufs: map[int]*Buf{}}
}

// Enabled reports whether events are recorded (false for a nil Tracer).
func (t *Tracer) Enabled() bool { return t != nil }

// StartUnixMicros returns the tracer's epoch (the instant TS counts
// from) as microseconds since the Unix epoch, or 0 on a nil Tracer. It
// is the reference point for merging traces recorded by other processes:
// offset = theirStart - ourStart shifts their timestamps onto our clock.
func (t *Tracer) StartUnixMicros() int64 {
	if t == nil {
		return 0
	}
	return t.start.UnixMicro()
}

// Inject merges events recorded by another process's tracer into this
// one, shifting their timestamps by offsetMicros (see StartUnixMicros).
// Pids are kept as recorded — in a DataMPI run each worker process
// already traces under its own rank pid, so a merged trace shows one
// process row per OS process. Metadata events pass through unshifted.
func (t *Tracer) Inject(events []Event, offsetMicros int64) {
	if t == nil {
		return
	}
	for _, e := range events {
		if e.Ph == "M" {
			t.addMeta(e)
			continue
		}
		e.TS += offsetMicros
		t.Rank(e.PID).append(e)
	}
}

// Rank returns pid's event buffer, creating it on first use. On a nil
// Tracer it returns nil, which every Buf method accepts as "disabled".
func (t *Tracer) Rank(pid int) *Buf {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	b := t.bufs[pid]
	if b == nil {
		b = &Buf{tr: t, pid: pid}
		t.bufs[pid] = b
	}
	return b
}

// SetProcessName attaches a human-readable name to a pid's row.
func (t *Tracer) SetProcessName(pid int, name string) {
	t.addMeta(Event{Name: "process_name", Ph: "M", PID: pid,
		Args: map[string]any{"name": name}})
}

// SetThreadName attaches a human-readable name to a (pid, tid) row.
func (t *Tracer) SetThreadName(pid, tid int, name string) {
	t.addMeta(Event{Name: "thread_name", Ph: "M", PID: pid, TID: tid,
		Args: map[string]any{"name": name}})
}

func (t *Tracer) addMeta(e Event) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.meta = append(t.meta, e)
	t.mu.Unlock()
}

// Events returns a merged snapshot of every recorded event: metadata
// first, then spans and instants in timestamp order.
func (t *Tracer) Events() []Event {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	out := append([]Event(nil), t.meta...)
	nmeta := len(out)
	bufs := make([]*Buf, 0, len(t.bufs))
	for _, b := range t.bufs {
		bufs = append(bufs, b)
	}
	t.mu.Unlock()
	for _, b := range bufs {
		b.mu.Lock()
		out = append(out, b.evs...)
		b.mu.Unlock()
	}
	body := out[nmeta:]
	sort.SliceStable(body, func(i, j int) bool { return body[i].TS < body[j].TS })
	return out
}

// WriteJSON serializes the trace as a Chrome trace_event JSON object.
func (t *Tracer) WriteJSON(w io.Writer) error {
	doc := struct {
		DisplayTimeUnit string  `json:"displayTimeUnit"`
		TraceEvents     []Event `json:"traceEvents"`
	}{DisplayTimeUnit: "ms", TraceEvents: t.Events()}
	if doc.TraceEvents == nil {
		doc.TraceEvents = []Event{}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(doc)
}

// WriteFile writes the trace to path (see WriteJSON).
func (t *Tracer) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := t.WriteJSON(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// Buf is one rank's event buffer.
type Buf struct {
	tr  *Tracer
	pid int

	mu  sync.Mutex
	evs []Event
}

// Start returns the current time when tracing is enabled and the zero
// time otherwise; pair it with Span. Callers on hot paths should still
// guard with a nil check to avoid building args maps when disabled.
func (b *Buf) Start() time.Time {
	if b == nil {
		return time.Time{}
	}
	return time.Now()
}

// Span records a complete event ("X") from start to now on (pid, tid).
func (b *Buf) Span(tid int, name, cat string, start time.Time, args map[string]any) {
	if b == nil {
		return
	}
	b.append(Event{
		Name: name, Cat: cat, Ph: "X",
		TS:  start.Sub(b.tr.start).Microseconds(),
		Dur: time.Since(start).Microseconds(),
		PID: b.pid, TID: tid, Args: args,
	})
}

// Instant records a point event ("i") on (pid, tid).
func (b *Buf) Instant(tid int, name, cat string, args map[string]any) {
	if b == nil {
		return
	}
	b.append(Event{
		Name: name, Cat: cat, Ph: "i", Scope: "t",
		TS:  time.Since(b.tr.start).Microseconds(),
		PID: b.pid, TID: tid, Args: args,
	})
}

func (b *Buf) append(e Event) {
	b.mu.Lock()
	b.evs = append(b.evs, e)
	b.mu.Unlock()
}
