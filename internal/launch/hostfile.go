package launch

import (
	"fmt"
	"strings"
)

// HostfileError pinpoints the hostfile entry that made parsing or
// validation fail: the offending host (or token), its 1-based line
// number, and why it was rejected. Callers can errors.As it out to show
// the user exactly which line of their -f file to fix.
type HostfileError struct {
	Host   string // the entry's host, or the bad token itself
	Line   int    // 1-based line number in the hostfile
	Reason string
}

func (e *HostfileError) Error() string {
	return fmt.Sprintf("launch: hostfile line %d (%q): %s", e.Line, e.Host, e.Reason)
}

// HostEntry is one parsed hostfile entry with its source line, so later
// validation (CheckLocalHosts) can still point back into the file.
type HostEntry struct {
	Host string
	Line int // 1-based line number the entry came from
}

// ParseHostfile parses an mpidrun -f hostfile: one host per line, with
// blank lines and #-comments (full-line or trailing) ignored and CRLF
// endings tolerated. A host may carry an optional "slots=N" suffix
// (OpenMPI style), which is accepted and discarded — the launcher sizes
// concurrency with -O/-A/Slots, not per-host slots. Errors are
// *HostfileError values naming the line.
func ParseHostfile(data string) ([]HostEntry, error) {
	var hosts []HostEntry
	for i, line := range strings.Split(data, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		host := fields[0]
		for _, f := range fields[1:] {
			if !strings.HasPrefix(f, "slots=") {
				return nil, &HostfileError{Host: f, Line: i + 1,
					Reason: fmt.Sprintf("unexpected token after host %q", host)}
			}
		}
		hosts = append(hosts, HostEntry{Host: host, Line: i + 1})
	}
	return hosts, nil
}

// IsLocalHost reports whether a hostfile entry names this machine.
// Process launch is single-host for now: every entry must be local.
func IsLocalHost(host string) bool {
	switch strings.ToLower(host) {
	case "localhost", "localhost.localdomain", "::1", "[::1]":
		return true
	}
	return strings.HasPrefix(host, "127.")
}

// CheckLocalHosts validates a parsed hostfile for process launch: all
// entries must be local, and the host count becomes the process count. A
// non-local entry is rejected with a *HostfileError naming its line.
func CheckLocalHosts(hosts []HostEntry) (int, error) {
	for _, h := range hosts {
		if !IsLocalHost(h.Host) {
			return 0, &HostfileError{Host: h.Host, Line: h.Line,
				Reason: "host is not this machine; -launch=proc supports single-host (localhost) hostfiles only"}
		}
	}
	return len(hosts), nil
}
