package launch

import (
	"fmt"
	"strings"
)

// ParseHostfile parses an mpidrun -f hostfile: one host per line, with
// blank lines and #-comments (full-line or trailing) ignored and CRLF
// endings tolerated. A host may carry an optional "slots=N" suffix
// (OpenMPI style), which is accepted and discarded — the launcher sizes
// concurrency with -O/-A/Slots, not per-host slots.
func ParseHostfile(data string) ([]string, error) {
	var hosts []string
	for i, line := range strings.Split(data, "\n") {
		line = strings.TrimSuffix(line, "\r")
		if j := strings.IndexByte(line, '#'); j >= 0 {
			line = line[:j]
		}
		fields := strings.Fields(line)
		if len(fields) == 0 {
			continue
		}
		host := fields[0]
		for _, f := range fields[1:] {
			if !strings.HasPrefix(f, "slots=") {
				return nil, fmt.Errorf("launch: hostfile line %d: unexpected token %q", i+1, f)
			}
		}
		hosts = append(hosts, host)
	}
	return hosts, nil
}

// IsLocalHost reports whether a hostfile entry names this machine.
// Process launch is single-host for now: every entry must be local.
func IsLocalHost(host string) bool {
	switch strings.ToLower(host) {
	case "localhost", "localhost.localdomain", "::1", "[::1]":
		return true
	}
	return strings.HasPrefix(host, "127.")
}

// CheckLocalHosts validates a parsed hostfile for process launch: all
// entries must be local, and the host count becomes the process count.
func CheckLocalHosts(hosts []string) (int, error) {
	for _, h := range hosts {
		if !IsLocalHost(h) {
			return 0, fmt.Errorf("launch: host %q is not this machine; "+
				"-launch=proc supports single-host (localhost) hostfiles only", h)
		}
	}
	return len(hosts), nil
}
