package launch

import (
	"bufio"
	"errors"
	"fmt"
	"io"
	"os"
	"os/exec"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"datampi/internal/mpi"
)

// bootstrapTimeout bounds the rendezvous handshake on both sides.
const bootstrapTimeout = 30 * time.Second

// termGrace is how long Shutdown waits for workers to exit after their
// stdin closes before SIGKILLing them.
const termGrace = 5 * time.Second

// ClusterConfig describes one launch attempt's worker fleet.
type ClusterConfig struct {
	Procs int
	// Exe is the worker binary; empty means re-execute this binary
	// (os.Executable). Args are passed verbatim.
	Exe  string
	Args []string
	// ExtraEnv entries ("KEY=value") ride on top of the spawn protocol
	// variables; the spec-based entry points use it for DATAMPI_SPEC.
	ExtraEnv []string
	Attempt  int
	// IOTimeout is forwarded to every world (send deadlines + the
	// master's dead-worker sweep interval). <= 0 disables deadlines —
	// strongly discouraged across processes.
	IOTimeout time.Duration
	// Output receives the workers' relayed stdout/stderr, each line
	// prefixed "[w<rank>] ". Defaults to os.Stderr.
	Output io.Writer
	// Transport progress-engine knobs, applied to the master's world and
	// forwarded to every worker via EnvCoalesce/EnvMux so the whole fleet
	// runs one engine configuration (see core.Config.CoalesceOff et al.).
	CoalesceOff      bool
	MuxOff           bool
	CoalesceBytes    int
	CoalesceDeadline time.Duration
	// ShmOff disables the same-host shared-memory transport for the whole
	// fleet; every pair stays on TCP. Default (false) lets the launcher
	// create a segment directory and the ranks select shm per pair.
	ShmOff bool
	// ShmDir overrides the parent directory the segment directory is
	// created under (default mpi.ShmBaseDir(): /dev/shm when present).
	// Tests point it at a temp dir to check the lifecycle.
	ShmDir string
	// DrainTimeout bounds every world's close-time drain barrier
	// (mpi.WithDrainTimeout); zero keeps the transport default.
	DrainTimeout time.Duration
	// ChunkBytes / MaxFrameBytes set the fleet's chunked-transfer
	// threshold and send-side frame cap (mpi.WithChunkBytes /
	// mpi.WithMaxFrame); zero keeps the transport defaults.
	ChunkBytes    int
	MaxFrameBytes int

	// shmDir is the created segment directory for this attempt, set by
	// StartCluster and removed again on Shutdown/killAll. Unexported:
	// callers configure ShmOff/ShmDir, not the directory itself.
	shmDir string
}

// spawnEnv assembles one worker's spawn-protocol environment on top of
// the launcher's own. Shared by StartCluster and Respawn so a respawned
// rank always rejoins with the fleet's exact configuration.
// shm selects whether this worker gets the segment directory: true for
// the initial fleet, false for Respawn replacements — a ring still holds
// the dead incarnation's cursors and residue, so a replacement must
// advertise plain TCP and let every pair involving it fall back.
func (cfg *ClusterConfig) spawnEnv(rank, attempt int, rvAddr string, shm bool) []string {
	env := append(os.Environ(),
		fmt.Sprintf("%s=%d", EnvWorkerRank, rank),
		fmt.Sprintf("%s=%d", EnvProcs, cfg.Procs),
		fmt.Sprintf("%s=%s", EnvRendezvous, rvAddr),
		fmt.Sprintf("%s=%d", EnvAttempt, attempt),
		fmt.Sprintf("%s=%d", EnvIOTimeout, cfg.IOTimeout.Milliseconds()),
	)
	switch {
	case cfg.CoalesceOff:
		env = append(env, EnvCoalesce+"=off")
	case cfg.CoalesceBytes > 0 || cfg.CoalesceDeadline > 0:
		env = append(env, fmt.Sprintf("%s=%d,%d", EnvCoalesce,
			cfg.CoalesceBytes, cfg.CoalesceDeadline.Microseconds()))
	}
	if cfg.MuxOff {
		env = append(env, EnvMux+"=off")
	}
	if shm && cfg.shmDir != "" {
		env = append(env, EnvShmDir+"="+cfg.shmDir)
	}
	if cfg.DrainTimeout > 0 {
		env = append(env, fmt.Sprintf("%s=%d", EnvDrain, cfg.DrainTimeout.Milliseconds()))
	}
	if cfg.ChunkBytes > 0 {
		env = append(env, fmt.Sprintf("%s=%d", EnvChunk, cfg.ChunkBytes))
	}
	if cfg.MaxFrameBytes > 0 {
		env = append(env, fmt.Sprintf("%s=%d", EnvMaxFrame, cfg.MaxFrameBytes))
	}
	return append(env, cfg.ExtraEnv...)
}

// worldOptions are the mpi options for the master's own world, matching
// what spawnEnv ships to the workers.
func (cfg *ClusterConfig) worldOptions() []mpi.Option {
	var wopts []mpi.Option
	if cfg.IOTimeout > 0 {
		wopts = append(wopts, mpi.WithSendTimeout(cfg.IOTimeout))
	}
	if cfg.CoalesceOff {
		wopts = append(wopts, mpi.WithCoalesceOff())
	}
	if cfg.MuxOff {
		wopts = append(wopts, mpi.WithMuxOff())
	}
	if cfg.CoalesceBytes > 0 || cfg.CoalesceDeadline > 0 {
		wopts = append(wopts, mpi.WithCoalesce(cfg.CoalesceBytes, cfg.CoalesceDeadline))
	}
	if cfg.shmDir != "" {
		wopts = append(wopts, mpi.WithShmSegments(cfg.shmDir))
	}
	if cfg.DrainTimeout > 0 {
		wopts = append(wopts, mpi.WithDrainTimeout(cfg.DrainTimeout))
	}
	if cfg.ChunkBytes > 0 {
		wopts = append(wopts, mpi.WithChunkBytes(cfg.ChunkBytes))
	}
	if cfg.MaxFrameBytes > 0 {
		wopts = append(wopts, mpi.WithMaxFrame(cfg.MaxFrameBytes))
	}
	return wopts
}

// setupShmDir creates one attempt's segment directory: a fresh tmpdir
// under parent (default mpi.ShmBaseDir()) holding the nonce file and the
// sparse ring matrix for procs workers plus the launcher.
func setupShmDir(parent string, ranks int) (string, error) {
	if parent == "" {
		parent = mpi.ShmBaseDir()
	}
	dir, err := os.MkdirTemp(parent, "datampi-shm-")
	if err != nil {
		return "", err
	}
	if err := mpi.CreateShmSegments(dir, ranks, 0); err != nil {
		os.RemoveAll(dir)
		return "", err
	}
	return dir, nil
}

// WorkerExit records how one worker process ended.
type WorkerExit struct {
	Rank   int
	Err    error // nil for exit status 0
	Killed bool  // true if Shutdown had to SIGKILL it
}

// Cluster is a running worker fleet plus the launcher's joined world:
// the launcher is world rank Procs, the workers ranks 0..Procs-1. The
// launcher watches every child; a worker that dies is declared dead on
// the world so the master's event sweep converts it into ErrRankDead
// instead of hanging.
type Cluster struct {
	cfg   ClusterConfig
	world *mpi.World

	cmds    []*exec.Cmd
	stdins  []io.WriteCloser
	relayWG sync.WaitGroup
	waitWG  sync.WaitGroup

	// addrs is the joined directory (worker transport addrs plus the
	// launcher's, index Procs), kept so Respawn can hand a replacement
	// worker a patched copy. gen numbers respawned incarnations, and
	// spawns[r] counts rank r's (so Shutdown can tell a respawned rank's
	// live process from its dead predecessor's exit record).
	addrs  []string
	gen    atomic.Int64
	spawns []int

	closing atomic.Bool
	mu      sync.Mutex
	exits   []WorkerExit
}

// StartCluster spawns cfg.Procs worker processes, completes the
// rendezvous, and joins the distributed world as the master rank.
// On error, everything already spawned is torn down.
func StartCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Procs <= 0 {
		return nil, fmt.Errorf("launch: need Procs > 0, got %d", cfg.Procs)
	}
	exe := cfg.Exe
	if exe == "" {
		var err error
		exe, err = os.Executable()
		if err != nil {
			return nil, fmt.Errorf("launch: cannot locate worker binary: %w", err)
		}
	}
	if cfg.Output == nil {
		cfg.Output = os.Stderr
	}
	// Same-host fast path: lay out the shared-memory segment directory
	// before spawning so every rank (workers + launcher) can map the same
	// rings. Failure is non-fatal — the fleet silently stays on TCP.
	if !cfg.ShmOff {
		if dir, err := setupShmDir(cfg.ShmDir, cfg.Procs+1); err != nil {
			fmt.Fprintf(cfg.Output, "[launcher] shm transport unavailable, using TCP: %v\n", err)
		} else {
			cfg.shmDir = dir
		}
	}
	rv, err := mpi.NewRendezvous(cfg.Procs, bootstrapTimeout)
	if err != nil {
		removeShmDir(cfg.shmDir)
		return nil, err
	}
	ep, err := mpi.ListenEndpoint()
	if err != nil {
		rv.Close()
		removeShmDir(cfg.shmDir)
		return nil, err
	}
	c := &Cluster{cfg: cfg}
	for r := 0; r < cfg.Procs; r++ {
		cmd := exec.Command(exe, cfg.Args...)
		cmd.Env = cfg.spawnEnv(r, cfg.Attempt, rv.Addr(), true)
		stdin, err := cmd.StdinPipe()
		if err == nil {
			var stdout, stderrp io.ReadCloser
			if stdout, err = cmd.StdoutPipe(); err == nil {
				stderrp, err = cmd.StderrPipe()
			}
			if err == nil {
				err = cmd.Start()
			}
			if err == nil {
				c.cmds = append(c.cmds, cmd)
				c.stdins = append(c.stdins, stdin)
				c.relay(r, stdout)
				c.relay(r, stderrp)
			}
		}
		if err != nil {
			c.killAll()
			rv.Close()
			ep.Close()
			return nil, fmt.Errorf("launch: spawning worker %d: %w", r, err)
		}
	}
	// The launcher's own directory entry carries the shm host identity
	// too: master<->worker pairs ride the rings just like worker pairs.
	selfAddr := ep.Addr()
	if cfg.shmDir != "" {
		if hid, err := mpi.ShmHostID(cfg.shmDir); err == nil {
			selfAddr = mpi.ShmAddr(selfAddr, hid)
		}
	}
	addrs, err := rv.Wait(selfAddr)
	rv.Close()
	if err != nil {
		c.killAll()
		ep.Close()
		return nil, err
	}
	world, err := mpi.JoinWorld(cfg.Procs+1, cfg.Procs, ep, addrs, cfg.worldOptions()...)
	if err != nil {
		c.killAll()
		ep.Close()
		return nil, err
	}
	c.world = world
	c.addrs = append([]string(nil), addrs...)
	c.spawns = make([]int, cfg.Procs)
	for i := range c.spawns {
		c.spawns[i] = 1
	}
	for r, cmd := range c.cmds {
		c.waitWG.Add(1)
		go c.watch(r, cmd)
	}
	return c, nil
}

// World is the launcher's joined world (rank Procs); pass it to
// core.RunContext via core.WithWorld.
func (c *Cluster) World() *mpi.World { return c.world }

// relay copies one worker output stream to cfg.Output line-by-line with
// a "[w<rank>] " prefix, so interleaved worker output stays attributable.
func (c *Cluster) relay(rank int, r io.Reader) {
	c.relayWG.Add(1)
	go func() {
		defer c.relayWG.Done()
		sc := bufio.NewScanner(r)
		sc.Buffer(make([]byte, 64*1024), 1024*1024)
		for sc.Scan() {
			fmt.Fprintf(c.cfg.Output, "[w%d] %s\n", rank, sc.Bytes())
		}
	}()
}

// watch reaps one child. An abnormal exit while the run is live is a
// worker death: declare the rank dead so the master's IOTimeout sweep
// turns the silence into a typed ErrRankDead.
func (c *Cluster) watch(rank int, cmd *exec.Cmd) {
	defer c.waitWG.Done()
	err := cmd.Wait()
	c.mu.Lock()
	c.exits = append(c.exits, WorkerExit{Rank: rank, Err: err})
	c.mu.Unlock()
	if err != nil && !c.closing.Load() {
		fmt.Fprintf(c.cfg.Output, "[launcher] worker %d exited: %v\n", rank, err)
		c.world.DeclareDead(rank)
	}
}

// Respawn starts a replacement OS process for a dead worker rank and
// completes a one-worker re-rendezvous with it, returning the
// replacement's transport address. It is the launcher half of a partial
// restart (core.WithRespawn): survivors keep running; only the named
// rank gets a fresh process. The replacement's attempt number is bumped
// past 0 so attempt-0-armed chaos failpoints stay disarmed.
func (c *Cluster) Respawn(rank int) (string, error) {
	if rank < 0 || rank >= c.cfg.Procs {
		return "", fmt.Errorf("launch: respawn rank %d out of range", rank)
	}
	exe := c.cfg.Exe
	if exe == "" {
		var err error
		exe, err = os.Executable()
		if err != nil {
			return "", fmt.Errorf("launch: cannot locate worker binary: %w", err)
		}
	}
	rv, err := mpi.NewRendezvous(1, bootstrapTimeout)
	if err != nil {
		return "", err
	}
	attempt := c.cfg.Attempt + int(c.gen.Add(1))
	cmd := exec.Command(exe, c.cfg.Args...)
	// shm=false: the replacement advertises plain TCP. Its rings still
	// hold the dead incarnation's state, so every pair involving this
	// rank is demoted to TCP (transport.replaceRank retires them).
	cmd.Env = c.cfg.spawnEnv(rank, attempt, rv.Addr(), false)
	stdin, err := cmd.StdinPipe()
	var stdout, stderrp io.ReadCloser
	if err == nil {
		if stdout, err = cmd.StdoutPipe(); err == nil {
			stderrp, err = cmd.StderrPipe()
		}
	}
	if err == nil {
		err = cmd.Start()
	}
	if err != nil {
		rv.Close()
		return "", fmt.Errorf("launch: respawning worker %d: %w", rank, err)
	}
	c.relay(rank, stdout)
	c.relay(rank, stderrp)
	addr, err := rv.WaitOne(rank, func(newAddr string) []string {
		c.mu.Lock()
		dir := append([]string(nil), c.addrs...)
		c.mu.Unlock()
		dir[rank] = newAddr
		return dir
	})
	rv.Close()
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return "", err
	}
	c.mu.Lock()
	c.addrs[rank] = addr
	c.cmds[rank] = cmd
	c.stdins[rank] = stdin
	c.spawns[rank]++
	c.mu.Unlock()
	c.waitWG.Add(1)
	go c.watch(rank, cmd)
	fmt.Fprintf(c.cfg.Output, "[launcher] respawned worker %d (attempt %d) at %s\n", rank, attempt, addr)
	return addr, nil
}

// removeShmDir unlinks one attempt's segment directory. mmap-ed rings in
// still-live processes keep their pages until those processes unmap or
// exit; unlinking here guarantees nothing persists under /dev/shm after
// the fleet is gone, whichever way it went down.
func removeShmDir(dir string) {
	if dir != "" {
		os.RemoveAll(dir)
	}
}

// killAll SIGKILLs every spawned child (bootstrap-failure path).
func (c *Cluster) killAll() {
	for _, cmd := range c.cmds {
		if cmd.Process != nil {
			cmd.Process.Kill()
		}
	}
	for _, cmd := range c.cmds {
		cmd.Wait()
	}
	c.relayWG.Wait()
	removeShmDir(c.cfg.shmDir)
}

// Shutdown ends the attempt: closes the world, closes every worker's
// stdin (their orphan watchdog makes them exit), SIGKILLs any that
// outlive the grace period, and returns how each worker ended.
func (c *Cluster) Shutdown() []WorkerExit {
	c.closing.Store(true)
	c.world.Close()
	for _, in := range c.stdins {
		in.Close()
	}
	done := make(chan struct{})
	go func() { c.waitWG.Wait(); close(done) }()
	killed := map[int]bool{}
	select {
	case <-done:
	case <-time.After(termGrace):
		c.mu.Lock()
		exited := make(map[int]int, len(c.exits))
		for _, e := range c.exits {
			exited[e.Rank]++
		}
		cmds := append([]*exec.Cmd(nil), c.cmds...)
		c.mu.Unlock()
		for r, cmd := range cmds {
			if exited[r] < c.spawns[r] && cmd.Process != nil {
				cmd.Process.Kill()
				killed[r] = true
			}
		}
		<-done
	}
	c.relayWG.Wait()
	removeShmDir(c.cfg.shmDir)
	c.mu.Lock()
	defer c.mu.Unlock()
	out := append([]WorkerExit(nil), c.exits...)
	for i := range out {
		if killed[out[i].Rank] {
			out[i].Killed = true
		}
	}
	return out
}

// workerDied reports whether err should trigger a fault-tolerant
// relaunch. A worker-process death reaches the master either as
// ErrRankDead (the launcher declared the rank dead and the event sweep
// noticed) or as a peer's send deadline expiring against the dead
// process's sockets — whichever loses the race still means the same
// thing. Deterministic failures (bad spec, task errors) carry neither
// type and are not retried.
func workerDied(err error) bool {
	return errors.Is(err, mpi.ErrRankDead) || errors.Is(err, mpi.ErrTimeout)
}

// sigkillSelf is the chaos-test failpoint: die exactly as an OOM-killed
// or crashed worker would, with no deferred cleanup.
func sigkillSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	select {} // unreachable; SIGKILL is not deliverable to ourselves twice
}
