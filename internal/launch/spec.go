package launch

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"datampi/internal/core"
	"datampi/internal/kv"
	"datampi/internal/trace"
)

// JobSpec is the serializable description of a built-in mpidrun
// application run. The launcher ships it to every worker in
// DATAMPI_SPEC; each process (launcher and workers alike) builds an
// identical core.Job from it, which is what makes the distributed
// communicator sequences line up. Inputs are generated deterministically
// from (Seed, task) inside the O tasks, so no shared filesystem input is
// needed; A tasks write their part files into the shared OutDir.
type JobSpec struct {
	App   string `json:"app"` // "wordcount" | "terasort" | "bigvalue" | "streamagg"
	NumO  int    `json:"numO"`
	NumA  int    `json:"numA"`
	Procs int    `json:"procs"`
	Slots int    `json:"slots,omitempty"`

	// Lines is wordcount's per-O-task input size; Records is terasort's
	// total record count, bigvalue's total streamed-value count and
	// streamagg's total event count (each split across O tasks);
	// ValueBytes is bigvalue's per-value size.
	Lines      int   `json:"lines,omitempty"`
	Records    int   `json:"records,omitempty"`
	ValueBytes int   `json:"valueBytes,omitempty"`
	Seed       int64 `json:"seed,omitempty"`

	// WindowMs is streamagg's tumbling event-time window size.
	WindowMs int `json:"windowMs,omitempty"`

	// OutDir receives the A tasks' part-%05d files (a real OS directory,
	// shared by all processes on this host).
	OutDir string `json:"outDir"`

	FT                bool   `json:"ft,omitempty"`
	CheckpointDir     string `json:"checkpointDir,omitempty"`
	CheckpointRecords int64  `json:"checkpointRecords,omitempty"`

	SPLBytes    int   `json:"splBytes,omitempty"`
	IOTimeoutMs int64 `json:"ioTimeoutMs,omitempty"`

	// CoalesceOff / MuxOff ablate the transport progress engine across
	// the whole fleet (master world + every worker world). ShmOff keeps
	// every rank pair on TCP: the launcher creates no segment directory
	// and no rank advertises a shm host identity.
	CoalesceOff bool `json:"coalesceOff,omitempty"`
	MuxOff      bool `json:"muxOff,omitempty"`
	ShmOff      bool `json:"shmOff,omitempty"`

	// ChunkBytes / MaxFrameBytes tune the large-value data plane fleet-wide
	// (core.Config.ChunkBytes / MaxFrameBytes, shipped to every worker
	// world through the spawn environment).
	ChunkBytes    int `json:"chunkBytes,omitempty"`
	MaxFrameBytes int `json:"maxFrameBytes,omitempty"`

	// PartialRestart recovers a dead worker by respawning just that rank
	// (core.Config.PartialRestart + core.WithRespawn) instead of
	// relaunching the whole attempt.
	PartialRestart bool `json:"partialRestart,omitempty"`

	// Chaos failpoint: on attempt 0, worker process KillRank SIGKILLs
	// itself as soon as KillAfterChunks complete checkpoint chunks are
	// visible in CheckpointDir — mid-shuffle, but with recoverable state
	// guaranteed durable. (Gating on emitted records is useless here:
	// emission outruns the transmit pipeline by orders of magnitude, so a
	// record-count trigger fires before anything is checkpointed.)
	KillRank        int `json:"killRank,omitempty"`
	KillAfterChunks int `json:"killAfterChunks,omitempty"`

	// FailCPCommit is a sharper chaos failpoint: on attempt 0, worker
	// KillRank SIGKILLs itself inside its FailCPCommit-th checkpoint
	// commit — after the chunk's tmp file is fully written and fsynced,
	// before the atomic rename publishes it. Recovery must treat the torn
	// commit as if it never happened.
	FailCPCommit int `json:"failCPCommit,omitempty"`
}

// Normalize fills defaults and validates the spec.
func (s *JobSpec) Normalize() error {
	switch s.App {
	case "wordcount", "terasort", "bigvalue", "streamagg":
	default:
		return fmt.Errorf("launch: unsupported app %q (process launch supports wordcount, terasort, bigvalue and streamagg)", s.App)
	}
	if s.NumO <= 0 || s.NumA <= 0 || s.Procs <= 0 {
		return fmt.Errorf("launch: need NumO/NumA/Procs > 0, got %d/%d/%d", s.NumO, s.NumA, s.Procs)
	}
	if s.Slots <= 0 {
		s.Slots = 2
	}
	if s.App == "streamagg" {
		if s.NumA > s.Procs*s.Slots {
			return fmt.Errorf("launch: streamagg (Streaming mode) needs NumA (%d) <= Procs*Slots (%d)",
				s.NumA, s.Procs*s.Slots)
		}
		if s.WindowMs <= 0 {
			s.WindowMs = 50
		}
		if s.Records <= 0 {
			s.Records = 4000
		}
	}
	if s.Lines <= 0 {
		s.Lines = 200
	}
	if s.Records <= 0 {
		if s.App == "bigvalue" {
			s.Records = 24 // bigvalue's Records is a streamed-value count
		} else {
			s.Records = 20000
		}
	}
	if s.App == "bigvalue" {
		if s.ValueBytes <= 0 {
			s.ValueBytes = 256 << 10
		}
		if s.ChunkBytes <= 0 {
			s.ChunkBytes = 32 << 10 // force real chunking at test scale
		}
	}
	if s.OutDir == "" {
		return fmt.Errorf("launch: OutDir must be set")
	}
	if s.FT && s.CheckpointDir == "" {
		return fmt.Errorf("launch: FT requires CheckpointDir")
	}
	if s.IOTimeoutMs <= 0 {
		s.IOTimeoutMs = 2000
	}
	if s.KillRank >= s.Procs {
		return fmt.Errorf("launch: KillRank %d out of range", s.KillRank)
	}
	if s.KillAfterChunks > 0 && !s.FT {
		return fmt.Errorf("launch: KillAfterChunks requires FT (the trigger watches CheckpointDir)")
	}
	if s.FailCPCommit > 0 && !s.FT {
		return fmt.Errorf("launch: FailCPCommit requires FT (the trigger is the checkpoint committer)")
	}
	if s.PartialRestart && !s.FT {
		return fmt.Errorf("launch: PartialRestart requires FT")
	}
	return nil
}

// IOTimeout is the spec's deadline as a duration.
func (s *JobSpec) IOTimeout() time.Duration {
	return time.Duration(s.IOTimeoutMs) * time.Millisecond
}

// BuildJob constructs the core.Job a process runs for this spec.
// workerRank is the hosting worker's world rank, or -1 on the launcher
// (and in in-process oracle runs, where one process hosts every rank).
// The chaos failpoint is armed only in the worker it names, on attempt 0.
func (s *JobSpec) BuildJob(workerRank, attempt int, tr *trace.Tracer) *core.Job {
	if s.KillAfterChunks > 0 && workerRank == s.KillRank && attempt == 0 {
		go watchKill(s.CheckpointDir, s.KillAfterChunks)
	}
	job := &core.Job{
		Name: s.App,
		Mode: core.MapReduce,
		Conf: core.Config{
			KeyCodec:          kv.Bytes,
			ValueCodec:        kv.Bytes,
			SPLBytes:          s.SPLBytes,
			FaultTolerance:    s.FT,
			CheckpointDir:     s.CheckpointDir,
			CheckpointRecords: s.CheckpointRecords,
			PartialRestart:    s.PartialRestart,
			CoalesceOff:       s.CoalesceOff,
			MuxOff:            s.MuxOff,
			ShmOff:            s.ShmOff,
			ChunkBytes:        s.ChunkBytes,
			MaxFrameBytes:     s.MaxFrameBytes,
			IOTimeout:         s.IOTimeout(),
			Extra:             map[string]string{"attempt": strconv.Itoa(attempt)},
		},
		NumO: s.NumO, NumA: s.NumA, Procs: s.Procs, Slots: s.Slots,
		Trace: tr,
	}
	if s.FailCPCommit > 0 && workerRank == s.KillRank && attempt == 0 {
		// Die mid-commit: the chunk's tmp file is durable but unpublished.
		var commits atomic.Int64
		target := int64(s.FailCPCommit)
		job.Conf.CheckpointCommitHook = func(task, seq int) error {
			if commits.Add(1) == target {
				sigkillSelf()
			}
			return nil
		}
	}
	switch s.App {
	case "wordcount":
		job.OTask = s.wordcountO()
		job.ATask = s.wordcountA()
	case "terasort":
		job.Conf.Partition = teraPartition
		job.OTask = s.terasortO()
		job.ATask = s.terasortA()
	case "bigvalue":
		job.OTask = s.bigvalueO()
		job.ATask = s.bigvalueA()
	case "streamagg":
		// The streaming service is expressed as a StreamJob and lowered to
		// the plain Job every process runs; the shared Conf built above
		// (fault tolerance, partial restart, transport knobs) carries over.
		sj := &core.StreamJob{
			Name:   s.App,
			Conf:   job.Conf,
			NumO:   s.NumO,
			NumA:   s.NumA,
			Procs:  s.Procs,
			Slots:  s.Slots,
			Window: core.WindowSpec{Size: time.Duration(s.WindowMs) * time.Millisecond},
			Source: s.streamaggSource(),
			Emit:   s.streamaggEmit(),
			Trace:  tr,
		}
		lowered, err := sj.Job()
		if err != nil {
			// Normalize validated every input Job checks; reaching here is a
			// programming error, not a configuration one.
			panic(fmt.Sprintf("launch: streamagg spec failed to lower: %v", err))
		}
		return lowered
	}
	return job
}

// watchKill polls the checkpoint directory and SIGKILLs this process once
// enough complete chunks are durable — the shuffle is still in flight
// (tens of checkpoint rounds remain), but recovery has something to load.
func watchKill(dir string, chunks int) {
	for {
		n := 0
		if ents, err := os.ReadDir(dir); err == nil {
			for _, e := range ents {
				if strings.HasSuffix(e.Name(), ".done") {
					n++
				}
			}
		}
		if n >= chunks {
			sigkillSelf()
		}
		time.Sleep(time.Millisecond)
	}
}

// ---------------------------------------------------------------------------
// wordcount

// wcVocab is the word pool; a small vocabulary forces real aggregation.
var wcVocab = []string{
	"the", "quick", "brown", "fox", "jumps", "over", "lazy", "dog",
	"moon", "sun", "data", "mpi", "shuffle", "merge", "spill", "trace",
}

func (s *JobSpec) wordcountO() core.TaskFunc {
	lines, seed := s.Lines, s.Seed
	return func(ctx *core.Context) error {
		rng := rand.New(rand.NewSource(seed ^ int64(ctx.Rank())<<20))
		one := make([]byte, 8)
		binary.BigEndian.PutUint64(one, 1)
		for l := 0; l < lines; l++ {
			for w, n := 0, 3+rng.Intn(8); w < n; w++ {
				word := wcVocab[rng.Intn(len(wcVocab))]
				if err := ctx.SendRecord(kv.Record{Key: []byte(word), Value: one}); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

func (s *JobSpec) wordcountA() core.TaskFunc {
	outDir := s.OutDir
	return func(ctx *core.Context) error {
		f, err := os.Create(PartPath(outDir, ctx.Rank()))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for {
			g, ok, err := ctx.NextGroup()
			if err != nil {
				f.Close()
				return err
			}
			if !ok {
				break
			}
			var sum uint64
			for _, v := range g.Values {
				sum += binary.BigEndian.Uint64(v)
			}
			fmt.Fprintf(w, "%s\t%d\n", g.Key, sum)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

// ---------------------------------------------------------------------------
// terasort

const teraKeyLen, teraValLen = 10, 12

// teraPartition is the TeraSort range partitioner: the first two key
// bytes index an even split of the 16-bit key-prefix space, so sorted
// partitions concatenate into a totally ordered output.
func teraPartition(key, _ []byte, numA int) int {
	p := int(binary.BigEndian.Uint16(key)) * numA >> 16
	if p >= numA {
		p = numA - 1
	}
	return p
}

// taskRecords splits Records across NumO tasks deterministically.
func (s *JobSpec) taskRecords(task int) int {
	n := s.Records / s.NumO
	if task < s.Records%s.NumO {
		n++
	}
	return n
}

func (s *JobSpec) terasortO() core.TaskFunc {
	spec := *s
	return func(ctx *core.Context) error {
		rng := rand.New(rand.NewSource(spec.Seed ^ int64(ctx.Rank())<<20))
		key := make([]byte, teraKeyLen)
		val := make([]byte, teraValLen)
		for i, n := 0, spec.taskRecords(ctx.Rank()); i < n; i++ {
			rng.Read(key)
			rng.Read(val)
			if err := ctx.SendRecord(kv.Record{Key: key, Value: val}); err != nil {
				return err
			}
		}
		return nil
	}
}

func (s *JobSpec) terasortA() core.TaskFunc {
	outDir := s.OutDir
	return func(ctx *core.Context) error {
		f, err := os.Create(PartPath(outDir, ctx.Rank()))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for {
			g, ok, err := ctx.NextGroup()
			if err != nil {
				f.Close()
				return err
			}
			if !ok {
				break
			}
			// Keys arrive sorted; duplicate keys' values are grouped. Emit
			// one line per record so the output is a stable total order.
			for _, v := range g.Values {
				fmt.Fprintf(w, "%x\t%x\n", g.Key, v)
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}

// PartPath is where A task `task` writes its output part file under a
// spec's OutDir.
func PartPath(dir string, task int) string {
	return filepath.Join(dir, fmt.Sprintf("part-%05d", task))
}

// ---------------------------------------------------------------------------
// spec wire form

func encodeSpec(s *JobSpec) (string, error) {
	b, err := json.Marshal(s)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

func decodeSpec(v string) (*JobSpec, error) {
	if v == "" {
		return nil, fmt.Errorf("launch: %s not set in worker environment", EnvSpec)
	}
	var s JobSpec
	if err := json.Unmarshal([]byte(v), &s); err != nil {
		return nil, fmt.Errorf("launch: bad %s: %w", EnvSpec, err)
	}
	return &s, nil
}
