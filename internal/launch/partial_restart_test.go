package launch

import (
	"path/filepath"
	"strings"
	"testing"

	"datampi/internal/trace"
)

// SIGKILL one worker inside a checkpoint commit — after the chunk's tmp
// file is fsynced, before the atomic rename — and require the launcher to
// recover it with a partial restart: only the dead rank gets a new OS
// process, survivors keep theirs, the torn commit is treated as if it
// never happened, and the output is byte-identical to a clean run.
func TestProcPartialRestartMidCommitKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	spec := JobSpec{
		App: "wordcount", NumO: 6, NumA: 4, Procs: 3,
		Lines: 1200, Seed: 5, SPLBytes: 4096,
		OutDir: filepath.Join(base, "proc"),
		FT:     true, CheckpointDir: filepath.Join(base, "cp"), CheckpointRecords: 300,
		PartialRestart: true,
		KillRank:       1, FailCPCommit: 2,
		IOTimeoutMs: 500,
	}
	ospec := spec
	ospec.OutDir = filepath.Join(base, "oracle")
	ores := runOracle(t, ospec)

	out := &syncWriter{}
	tr := trace.New()
	res, err := Launch(&spec, Options{Output: out, Trace: tr})
	if err != nil {
		t.Fatalf("Launch after mid-commit kill: %v\nworker output:\n%s", err, out.String())
	}
	checkPartsEqual(t, readParts(t, spec.OutDir, spec.NumA), readParts(t, ospec.OutDir, spec.NumA))
	// Per-task accounting must cover the full input exactly once: the
	// recovery pre-seeds each restarted task's committed base and the
	// re-run adds only its post-skip records.
	var totalO int64
	for _, n := range res.OTaskSent {
		totalO += n
	}
	if totalO != ores.RecordsSent {
		t.Errorf("sum(OTaskSent) = %d, want %d (oracle)", totalO, ores.RecordsSent)
	}
	// The committed prefix was replayed from chunks, not re-sent.
	if res.RecordsSent >= ores.RecordsSent {
		t.Errorf("RecordsSent = %d, want < %d: the restarted tasks re-sent their committed prefix", res.RecordsSent, ores.RecordsSent)
	}

	log := out.String()
	// The whole point: the fleet was never relaunched. The dead rank was
	// respawned in place instead.
	if strings.Contains(log, "relaunching from checkpoints") {
		t.Errorf("whole-attempt relaunch happened; partial restart did not engage:\n%s", log)
	}
	if !strings.Contains(log, "respawned worker 1") {
		t.Errorf("launcher never respawned worker 1; output:\n%s", log)
	}
	if n := res.RuntimeCounters["restart.partial.restarts"]; n != 1 {
		t.Errorf("restart.partial.restarts = %d, want 1", n)
	}
	if res.RuntimeCounters["restart.partial.replayed.records"] == 0 {
		t.Error("partial restart replayed no checkpointed records")
	}

	// Per-rank pid stability, proven by the merged trace: every worker
	// stamps a proc.start instant with its OS pid and attempt number.
	// Survivor ranks must have exactly one, at attempt 0; the killed rank
	// must additionally have a respawned incarnation at attempt >= 1.
	type start struct{ pid, attempt int }
	starts := map[int][]start{}
	var sawRestartSpan bool
	for _, e := range tr.Events() {
		if e.Name == "proc.start" {
			// Args survive a JSON round-trip from the worker, so numbers
			// arrive as float64.
			pid, _ := e.Args["pid"].(float64)
			attempt, _ := e.Args["attempt"].(float64)
			starts[e.PID] = append(starts[e.PID], start{int(pid), int(attempt)})
		}
		if e.Name == "restart.partial" && e.PID == spec.Procs {
			sawRestartSpan = true
		}
	}
	for _, r := range []int{0, 2} {
		ss := starts[r]
		if len(ss) != 1 || ss[0].attempt != 0 {
			t.Errorf("survivor rank %d proc.start events = %v, want one at attempt 0", r, ss)
		}
	}
	// The SIGKILLed incarnation's trace buffer died with it (a worker's
	// trace rides on its final bye), so rank 1's surviving proc.start must
	// be the respawned incarnation's — attempt >= 1, in a fresh process.
	kills := starts[spec.KillRank]
	if len(kills) == 0 {
		t.Fatalf("killed rank %d has no proc.start event from its replacement", spec.KillRank)
	}
	respawned := 0
	for _, s := range kills {
		if s.attempt >= 1 {
			respawned++
			for _, r := range []int{0, 2} {
				if len(starts[r]) > 0 && starts[r][0].pid == s.pid {
					t.Errorf("replacement for rank %d reused survivor rank %d's pid %d", spec.KillRank, r, s.pid)
				}
			}
		}
	}
	if respawned == 0 {
		t.Errorf("killed rank %d never restarted at attempt >= 1: %v", spec.KillRank, kills)
	}
	if !sawRestartSpan {
		t.Error("merged trace has no restart.partial span on the master row")
	}
}
