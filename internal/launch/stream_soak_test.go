package launch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// readWindows returns every published window file under a streamagg
// OutDir, name -> content. Unpublished temp files (a killed worker's torn
// writes) are ignored: the atomic rename is the publish point.
func readWindows(t *testing.T, dir string) map[string]string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	wins := map[string]string{}
	for _, e := range ents {
		if !strings.HasPrefix(e.Name(), "win-") || strings.Contains(e.Name(), ".tmp.") {
			continue
		}
		b, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		wins[e.Name()] = string(b)
	}
	return wins
}

func checkWindowsEqual(t *testing.T, got, want map[string]string) {
	t.Helper()
	for name, w := range want {
		g, ok := got[name]
		if !ok {
			t.Errorf("window %s missing", name)
		} else if g != w {
			t.Errorf("window %s differs from oracle (%d vs %d bytes)", name, len(g), len(w))
		}
	}
	for name := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("window %s not in oracle (duplicate or spurious firing)", name)
		}
	}
}

// Clean proc-mode run of the resident streaming service: every window the
// in-process oracle fires must be published exactly once, byte-identical,
// by the worker fleet.
func TestProcStreamAgg(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	spec := JobSpec{
		App: "streamagg", NumO: 6, NumA: 4, Procs: 3, Slots: 2,
		Records: 12000, WindowMs: 50, Seed: 21, SPLBytes: 4096,
		OutDir: filepath.Join(base, "proc"),
	}
	ospec := spec
	ospec.OutDir = filepath.Join(base, "oracle")
	runOracle(t, ospec)

	out := &syncWriter{}
	res, err := Launch(&spec, Options{Output: out})
	if err != nil {
		t.Fatalf("Launch: %v\nworker output:\n%s", err, out.String())
	}
	want := readWindows(t, ospec.OutDir)
	if len(want) == 0 {
		t.Fatal("oracle fired no windows")
	}
	checkWindowsEqual(t, readWindows(t, spec.OutDir), want)
	if n := res.RuntimeCounters["stream.windows.fired"]; n < int64(len(want)) {
		t.Errorf("stream.windows.fired = %d, want >= %d", n, len(want))
	}
	if in, outN := res.RuntimeCounters["stream.events.in"], res.RuntimeCounters["stream.events.out"]; in != outN || in == 0 {
		t.Errorf("stream events in=%d out=%d, want equal and nonzero", in, outN)
	}
	if res.RuntimeCounters["stream.credits.granted"] == 0 {
		t.Error("credit flow control never granted (counter missing)")
	}
}

// The streaming soak: SIGKILL one worker mid-stream and require the
// launcher to recover it with a partial restart — survivors keep their
// window state and OS processes, the replacement replays checkpointed
// events deterministically, and the emit fence makes every re-fired
// window land exactly once. The published window set must be
// byte-identical to a clean run's, proving the service kept emitting
// through the fault without dropping or duplicating a single window.
func TestProcStreamSoakPartialRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes and runs a long stream")
	}
	base := t.TempDir()
	spec := JobSpec{
		App: "streamagg", NumO: 6, NumA: 4, Procs: 3, Slots: 2,
		Records: 30000, WindowMs: 50, Seed: 23, SPLBytes: 2048,
		OutDir: filepath.Join(base, "proc"),
		FT:     true, CheckpointDir: filepath.Join(base, "cp"), CheckpointRecords: 400,
		PartialRestart: true,
		KillRank:       1, KillAfterChunks: 3,
		IOTimeoutMs: 500,
	}
	ospec := spec
	ospec.OutDir = filepath.Join(base, "oracle")
	runOracle(t, ospec)

	out := &syncWriter{}
	res, err := Launch(&spec, Options{Output: out})
	if err != nil {
		t.Fatalf("Launch after mid-stream kill: %v\nworker output:\n%s", err, out.String())
	}
	want := readWindows(t, ospec.OutDir)
	if len(want) == 0 {
		t.Fatal("oracle fired no windows")
	}
	checkWindowsEqual(t, readWindows(t, spec.OutDir), want)

	log := out.String()
	if strings.Contains(log, "relaunching from checkpoints") {
		t.Errorf("whole-attempt relaunch happened; partial restart did not engage:\n%s", log)
	}
	if !strings.Contains(log, "respawned worker 1") {
		t.Errorf("launcher never respawned worker 1; output:\n%s", log)
	}
	if n := res.RuntimeCounters["restart.partial.restarts"]; n != 1 {
		t.Errorf("restart.partial.restarts = %d, want 1", n)
	}
	if res.RuntimeCounters["restart.partial.replayed.records"] == 0 {
		t.Error("partial restart replayed no checkpointed records")
	}
	// The replacement re-fires its windows from the replay; with the emit
	// fence in place those firings are absorbed, so the fleet-wide firing
	// count meets or exceeds the published set, never undershoots it.
	if n := res.RuntimeCounters["stream.windows.fired"]; n < int64(len(want)) {
		t.Errorf("stream.windows.fired = %d, want >= %d", n, len(want))
	}
}
