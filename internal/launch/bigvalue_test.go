package launch

import (
	"path/filepath"
	"strings"
	"testing"
)

// bigvalueSpec is the shared geometry of the large-value e2e runs: every
// value (128 KiB) is far above both the chunk threshold (16 KiB) and the
// frame cap (64 KiB), so an unchunked transport could not carry a single
// one of them.
func bigvalueSpec(base string) JobSpec {
	return JobSpec{
		App: "bigvalue", NumO: 4, NumA: 2, Procs: 3,
		Records: 24, ValueBytes: 128 << 10, Seed: 11,
		ChunkBytes: 16 << 10, MaxFrameBytes: 64 << 10,
		OutDir:      filepath.Join(base, "proc"),
		IOTimeoutMs: 500,
	}
}

// TestProcBigValueE2E streams values larger than the frame cap across
// real worker OS processes and requires the part files byte-identical to
// the in-process sequential oracle.
func TestProcBigValueE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	spec := bigvalueSpec(base)
	ospec := spec
	ospec.OutDir = filepath.Join(base, "oracle")
	runOracle(t, ospec)

	out := &syncWriter{}
	if _, err := Launch(&spec, Options{Output: out}); err != nil {
		t.Fatalf("Launch: %v\nworker output:\n%s", err, out.String())
	}
	checkPartsEqual(t, readParts(t, spec.OutDir, spec.NumA), readParts(t, ospec.OutDir, spec.NumA))
}

// TestProcBigValueMidChunkKill is the crash-matrix case for the
// large-value data plane: SIGKILL a worker while it is mid-stream —
// chunk frames committed, in flight, and unsent all at once — and
// recover it with a partial restart. A partial value surfacing anywhere
// (merge, spill, checkpoint replay) changes its A-side hash line, so
// byte-identical part files prove values arrive complete exactly once.
func TestProcBigValueMidChunkKill(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	spec := bigvalueSpec(base)
	spec.FT = true
	spec.CheckpointDir = filepath.Join(base, "cp")
	spec.CheckpointRecords = 2
	spec.PartialRestart = true
	spec.KillRank = 1
	spec.KillAfterChunks = 2
	ospec := spec
	ospec.OutDir = filepath.Join(base, "oracle")
	runOracle(t, ospec)

	out := &syncWriter{}
	res, err := Launch(&spec, Options{Output: out})
	if err != nil {
		t.Fatalf("Launch after mid-chunk kill: %v\nworker output:\n%s", err, out.String())
	}
	checkPartsEqual(t, readParts(t, spec.OutDir, spec.NumA), readParts(t, ospec.OutDir, spec.NumA))

	log := out.String()
	if !strings.Contains(log, "respawned worker 1") {
		t.Errorf("launcher never respawned worker 1; output:\n%s", log)
	}
	if res.RuntimeCounters["blob.values.received"] == 0 {
		t.Error("no blob values crossed the data plane — the workload did not exercise chunking")
	}
}
