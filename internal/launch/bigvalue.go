package launch

import (
	"bufio"
	"fmt"
	"hash/fnv"
	"io"
	"os"

	"datampi/internal/core"
)

// bigvalue is the large-value data-plane workload of the built-in app
// set: every O task streams values far above the chunk threshold through
// Context.SendValue, and the A tasks stream them back out of the blob
// store via Group.ValueReader, writing one "key\tlen:hash" line per
// value. Neither side ever materializes a value, so the part files are a
// whole-pipeline proof that chunked transfer, spill, checkpoint replay
// and partial restart reproduce each value byte-identically — any
// partial or corrupt value surfacing anywhere changes its line.

// bvReader streams a deterministic pattern derived from (seed, key)
// without holding the value: the generator half of the oracle.
type bvReader struct {
	state uint64
	n     int64
}

func newBVReader(seed int64, key string, n int64) *bvReader {
	h := fnv.New64a()
	fmt.Fprintf(h, "%d/%s", seed, key)
	return &bvReader{state: h.Sum64() | 1, n: n}
}

func (r *bvReader) Read(p []byte) (int, error) {
	if r.n <= 0 {
		return 0, io.EOF
	}
	if int64(len(p)) > r.n {
		p = p[:r.n]
	}
	for i := range p {
		r.state = r.state*6364136223846793005 + 1442695040888963407
		p[i] = byte(r.state >> 33)
	}
	r.n -= int64(len(p))
	return len(p), nil
}

// bigvalueO streams Records values (split across O tasks) of ValueBytes
// each. Keys are globally unique and deterministic, so every attempt and
// every partial restart re-emits the identical sequence.
func (s *JobSpec) bigvalueO() core.TaskFunc {
	spec := *s
	return func(ctx *core.Context) error {
		for i := 0; i < spec.Records; i++ {
			if i%spec.NumO != ctx.Rank() {
				continue
			}
			key := fmt.Sprintf("v%06d", i)
			n := int64(spec.ValueBytes)
			if err := ctx.SendValue([]byte(key), newBVReader(spec.Seed, key, n), n); err != nil {
				return err
			}
		}
		return nil
	}
}

// bigvalueA hashes each value through its streaming reader — O(chunk)
// memory — and writes one line per value. A value that arrived partial
// surfaces as an open error or a wrong hash, never silently.
func (s *JobSpec) bigvalueA() core.TaskFunc {
	outDir := s.OutDir
	return func(ctx *core.Context) error {
		f, err := os.Create(PartPath(outDir, ctx.Rank()))
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for {
			g, ok, err := ctx.NextGroup()
			if err != nil {
				f.Close()
				return err
			}
			if !ok {
				break
			}
			for i := range g.Values {
				r, err := g.ValueReader(i)
				if err != nil {
					f.Close()
					return err
				}
				h := fnv.New64a()
				n, err := io.Copy(h, r)
				if err != nil {
					f.Close()
					return err
				}
				fmt.Fprintf(w, "%s\t%d:%x\n", g.Key, n, h.Sum64())
			}
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
}
