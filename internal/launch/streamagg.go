package launch

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"datampi/internal/core"
)

// streamaggEpoch anchors streamagg's synthetic event times. A fixed epoch
// (rather than wall clock) keeps every incarnation's emission sequence
// byte-identical, which is what lets a partial restart replay windows
// exactly once against the sink's emit fence.
var streamaggEpoch = time.Unix(1_700_000_000, 0)

// streamaggKeys is the key-space size; a small space forces every window
// to aggregate for real.
const streamaggKeys = 16

// streamaggWMEvery is how many events a source emits between watermark
// updates. Event times are monotonic per source, so the watermark always
// trails the last event honestly (nothing is ever late).
const streamaggWMEvery = 32

// streamaggSource is the deterministic O-side adapter: each source emits
// its share of Records as 1ms-spaced events with seeded keys and
// recomputable payloads, advancing its watermark every few events.
func (s *JobSpec) streamaggSource() func(sc *core.SourceContext) error {
	spec := *s
	return func(sc *core.SourceContext) error {
		rng := rand.New(rand.NewSource(spec.Seed ^ int64(sc.Rank())<<20))
		var val [8]byte
		n := spec.taskRecords(sc.Rank())
		for i := 0; i < n; i++ {
			key := fmt.Sprintf("k%02d", rng.Intn(streamaggKeys))
			binary.BigEndian.PutUint64(val[:], uint64(sc.Rank())<<32|uint64(i))
			ts := streamaggEpoch.Add(time.Duration(i) * time.Millisecond)
			if err := sc.Emit([]byte(key), val[:], ts); err != nil {
				return err
			}
			if i%streamaggWMEvery == streamaggWMEvery-1 {
				if err := sc.Watermark(ts); err != nil {
					return err
				}
			}
		}
		return nil // the end-of-stream watermark flushes the tail windows
	}
}

// streamaggEmit writes each fired window as one atomically-published file
// under OutDir. The skip-if-exists check is the durable exactly-once
// fence: a deterministic replay after a partial restart re-fires
// byte-identical windows, and any window already published simply stands.
// Content is per-key count and sum — order-independent aggregates, so the
// bytes do not depend on how the sources happened to interleave.
func (s *JobSpec) streamaggEmit() func(fw core.FiredWindow) error {
	outDir := s.OutDir
	return func(fw core.FiredWindow) error {
		path := WindowPath(outDir, fw.Task, fw.Start)
		if _, err := os.Stat(path); err == nil {
			return nil // already published by a previous incarnation
		}
		tmp := fmt.Sprintf("%s.tmp.%d", path, os.Getpid())
		f, err := os.Create(tmp)
		if err != nil {
			return err
		}
		w := bufio.NewWriter(f)
		for _, g := range fw.Groups {
			var sum uint64
			for _, v := range g.Values {
				sum += binary.BigEndian.Uint64(v)
			}
			fmt.Fprintf(w, "%s\t%d\t%d\n", g.Key, len(g.Values), sum)
		}
		if err := w.Flush(); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
}

// WindowPath is where streamagg's A task `task` publishes the window
// starting at `start` under a spec's OutDir.
func WindowPath(dir string, task int, start time.Time) string {
	return filepath.Join(dir, fmt.Sprintf("win-%03d-%020d", task, start.UnixNano()))
}
