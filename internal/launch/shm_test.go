package launch

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// requireNoShmLeak asserts the segment parent directory is empty: every
// datampi-shm-* directory the launcher created under it was removed
// again, whichever way the attempt ended.
func requireNoShmLeak(t *testing.T, parent string) {
	t.Helper()
	ents, err := os.ReadDir(parent)
	if err != nil {
		t.Fatalf("reading shm parent: %v", err)
	}
	for _, e := range ents {
		t.Errorf("shm segment leak: %s left under %s", e.Name(), parent)
	}
}

// TestProcShmTransport is the process-level e2e for the shared-memory
// ring transport: the whole fleet runs on one host, so with the default
// configuration every rank pair (workers and master alike) must select
// shm at rendezvous, move the entire shuffle through the rings without a
// single transport dial, and still produce output byte-identical to the
// in-process oracle. The run also pins the segment lifecycle: after
// Shutdown the segment directory must be gone.
func TestProcShmTransport(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	shmParent := filepath.Join(base, "shm")
	if err := os.MkdirAll(shmParent, 0o700); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{
		App: "terasort", NumO: 6, NumA: 3, Procs: 3,
		Records: 9000, Seed: 17, SPLBytes: 4096,
		OutDir: filepath.Join(base, "proc"),
	}
	ospec := spec
	ospec.OutDir = filepath.Join(base, "oracle")
	ores := runOracle(t, ospec)

	out := &syncWriter{}
	res, err := Launch(&spec, Options{Output: out, ShmDir: shmParent})
	if err != nil {
		t.Fatalf("Launch: %v\nworker output:\n%s", err, out.String())
	}
	checkPartsEqual(t, readParts(t, spec.OutDir, spec.NumA), readParts(t, ospec.OutDir, spec.NumA))
	checkCounterParity(t, res, ores)

	// Transport selection: every pair rode the rings. mpi.* counters fold
	// additively across the fleet, so conns covers all processes.
	if v := res.RuntimeCounters["mpi.shm.conns"]; v == 0 {
		t.Error("mpi.shm.conns = 0: no pair selected the shm transport")
	}
	if v := res.RuntimeCounters["mpi.shm.bytes"]; v == 0 {
		t.Error("mpi.shm.bytes = 0: shuffle did not ride the rings")
	}
	if v := res.RuntimeCounters["mpi.dials"]; v != 0 {
		t.Errorf("mpi.dials = %d with all ranks on one host, want 0 (pure shm fleet)", v)
	}
	requireNoShmLeak(t, shmParent)
}

// TestProcShmOffAblation runs the identical spec with ShmOff: the fleet
// must fall back to TCP (dials nonzero, no shm counters) and the job-
// level counters — everything except the mpi.* wire set — must be
// byte-identical to the shm run's. Transport choice is invisible to the
// computation.
func TestProcShmOffAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	mkSpec := func(name string, shmOff bool) JobSpec {
		return JobSpec{
			App: "wordcount", NumO: 6, NumA: 3, Procs: 2,
			Lines: 300, Seed: 23, SPLBytes: 4096,
			OutDir: filepath.Join(base, name),
			ShmOff: shmOff,
		}
	}
	run := func(name string, shmOff bool) map[string]int64 {
		spec := mkSpec(name, shmOff)
		out := &syncWriter{}
		res, err := Launch(&spec, Options{Output: out})
		if err != nil {
			t.Fatalf("%s Launch: %v\nworker output:\n%s", name, err, out.String())
		}
		return res.RuntimeCounters
	}
	shm := run("shm", false)
	off := run("shmoff", true)

	if shm["mpi.shm.conns"] == 0 || shm["mpi.dials"] != 0 {
		t.Errorf("default fleet: shm.conns=%d dials=%d, want shm selected everywhere",
			shm["mpi.shm.conns"], shm["mpi.dials"])
	}
	if off["mpi.shm.conns"] != 0 || off["mpi.shm.bytes"] != 0 {
		t.Errorf("shm-off fleet still used rings: conns=%d bytes=%d",
			off["mpi.shm.conns"], off["mpi.shm.bytes"])
	}
	if off["mpi.dials"] == 0 {
		t.Error("shm-off fleet dialed nothing — ablation did not fall back to TCP")
	}
	// Drop the mpi.* wire counters (transport-specific by design) and the
	// per-pair matrices (the master schedules tasks to worker slots
	// dynamically, so the src->dst split varies run to run on any
	// transport); every remaining job counter must match exactly.
	strip := func(m map[string]int64) map[string]int64 {
		out := map[string]int64{}
		for k, v := range m {
			if !strings.HasPrefix(k, "mpi.") && !strings.Contains(k, "->") {
				out[k] = v
			}
		}
		return out
	}
	sj, oj := strip(shm), strip(off)
	if len(sj) != len(oj) {
		t.Errorf("job counter sets differ: %d vs %d entries", len(sj), len(oj))
	}
	for k, v := range sj {
		if ov, ok := oj[k]; !ok || ov != v {
			t.Errorf("job counter %s: shm=%d shm-off=%d", k, v, ov)
		}
	}
	// Both outputs must also match each other exactly.
	checkPartsEqual(t, readParts(t, mkSpec("shm", false).OutDir, 3),
		readParts(t, mkSpec("shmoff", true).OutDir, 3))
}
