package launch

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"datampi/internal/core"
	"datampi/internal/trace"
)

// TestMain routes spawned copies of this test binary into the worker
// loop: a child re-executed by StartCluster must never run the tests.
func TestMain(m *testing.M) {
	if IsSpawnedWorker() {
		if err := RunSpawnedWorker(); err != nil {
			fmt.Fprintln(os.Stderr, "worker:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// syncWriter lets concurrent relay goroutines share one buffer.
type syncWriter struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (w *syncWriter) Write(p []byte) (int, error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.Write(p)
}

func (w *syncWriter) String() string {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.b.String()
}

// runOracle runs the same spec entirely in one process (the goroutine
// launch mode) into its own output directory.
func runOracle(t *testing.T, spec JobSpec) *core.Result {
	t.Helper()
	spec.KillAfterChunks = 0 // failpoints are a process-launch concern
	spec.FailCPCommit = 0
	spec.PartialRestart = false
	spec.FT = false
	spec.CheckpointDir = ""
	if err := spec.Normalize(); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(spec.OutDir, 0o755); err != nil {
		t.Fatal(err)
	}
	res, err := core.Run(spec.BuildJob(-1, 0, nil), core.WithTCPTransport())
	if err != nil {
		t.Fatalf("oracle run: %v", err)
	}
	return res
}

// readParts returns the concatenated part-%05d files of a run.
func readParts(t *testing.T, dir string, numA int) []string {
	t.Helper()
	parts := make([]string, numA)
	for i := range parts {
		b, err := os.ReadFile(PartPath(dir, i))
		if err != nil {
			t.Fatalf("missing output part: %v", err)
		}
		parts[i] = string(b)
	}
	return parts
}

func checkPartsEqual(t *testing.T, got, want []string) {
	t.Helper()
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("part-%05d differs from oracle (%d vs %d bytes)", i, len(got[i]), len(want[i]))
		}
	}
}

// checkCounterParity asserts the distributed run moved exactly the data
// the oracle did, and that its own send/recv sides balance.
func checkCounterParity(t *testing.T, got, want *core.Result) {
	t.Helper()
	for _, name := range []string{"shuffle.bytes.sent", "shuffle.bytes.received",
		"shuffle.records.sent", "shuffle.records.received"} {
		if g, w := got.RuntimeCounters[name], want.RuntimeCounters[name]; g != w {
			t.Errorf("%s = %d, want %d (oracle)", name, g, w)
		}
	}
	if s, r := got.RuntimeCounters["shuffle.bytes.sent"], got.RuntimeCounters["shuffle.bytes.received"]; s != r || s == 0 {
		t.Errorf("shuffle not balanced: sent %d bytes, received %d", s, r)
	}
	if got.RecordsSent != want.RecordsSent {
		t.Errorf("RecordsSent = %d, want %d", got.RecordsSent, want.RecordsSent)
	}
}

func TestProcWordCount(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	spec := JobSpec{
		App: "wordcount", NumO: 8, NumA: 4, Procs: 3,
		Lines: 400, Seed: 7, SPLBytes: 4096,
		OutDir: filepath.Join(base, "proc"),
	}
	ospec := spec
	ospec.OutDir = filepath.Join(base, "oracle")
	ores := runOracle(t, ospec)

	out := &syncWriter{}
	tr := trace.New()
	res, err := Launch(&spec, Options{Output: out, Trace: tr})
	if err != nil {
		t.Fatalf("Launch: %v\nworker output:\n%s", err, out.String())
	}
	checkPartsEqual(t, readParts(t, spec.OutDir, spec.NumA), readParts(t, ospec.OutDir, spec.NumA))
	checkCounterParity(t, res, ores)

	// The merged Chrome trace must hold every worker process's spans,
	// shifted onto the launcher's clock (per-process pids).
	taskSpans := map[int]int{}
	for _, e := range tr.Events() {
		if e.Cat == "task" {
			taskSpans[e.PID]++
		}
	}
	for r := 0; r < spec.Procs; r++ {
		if taskSpans[r] == 0 {
			t.Errorf("merged trace has no task spans from worker process %d", r)
		}
	}
	if err := tr.WriteFile(filepath.Join(base, "trace.json")); err != nil {
		t.Fatalf("writing merged trace: %v", err)
	}
}

func TestProcTeraSort(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	spec := JobSpec{
		App: "terasort", NumO: 8, NumA: 4, Procs: 3,
		Records: 12000, Seed: 11, SPLBytes: 4096,
		OutDir: filepath.Join(base, "proc"),
	}
	ospec := spec
	ospec.OutDir = filepath.Join(base, "oracle")
	ores := runOracle(t, ospec)

	out := &syncWriter{}
	res, err := Launch(&spec, Options{Output: out})
	if err != nil {
		t.Fatalf("Launch: %v\nworker output:\n%s", err, out.String())
	}
	parts := readParts(t, spec.OutDir, spec.NumA)
	checkPartsEqual(t, parts, readParts(t, ospec.OutDir, spec.NumA))
	checkCounterParity(t, res, ores)

	// Range partitioning + per-partition sort must yield a global order:
	// every part sorted internally, parts sorted relative to each other.
	var prev string
	var total int
	for i, p := range parts {
		lines := strings.Split(strings.TrimSuffix(p, "\n"), "\n")
		total += len(lines)
		for _, l := range lines {
			key := l[:strings.IndexByte(l, '\t')]
			if key < prev {
				t.Fatalf("part-%05d: key %s out of order after %s", i, key, prev)
			}
			prev = key
		}
	}
	if total != spec.Records {
		t.Errorf("output has %d records, want %d", total, spec.Records)
	}
}

// TestProcMuxConnCount pins the progress engine's socket economics at
// the process level: with multiplexing on (the default) the whole fleet
// opens at most one outgoing TCP connection per ordered process pair —
// regardless of how many communicators and ranks each process hosts —
// while the mux-off ablation pays one connection per stream triple. Both
// configurations must produce output byte-identical to the in-process
// oracle; mpi.mux.conns folds additively across worker processes, so the
// launcher's merged result carries the fleet-wide total.
func TestProcMuxConnCount(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	// ShmOff: this test pins the *TCP* socket economics; with the
	// shared-memory transport on (the fleet default), same-host pairs
	// never dial and mpi.mux.conns stays 0 — see TestProcShmTransport.
	mkSpec := func(name string, muxOff bool) JobSpec {
		return JobSpec{
			App: "wordcount", NumO: 6, NumA: 3, Procs: 3,
			Lines: 300, Seed: 13, SPLBytes: 4096,
			OutDir: filepath.Join(base, name),
			MuxOff: muxOff, ShmOff: true,
		}
	}
	ospec := mkSpec("oracle", false)
	runOracle(t, ospec)
	want := readParts(t, ospec.OutDir, ospec.NumA)

	run := func(name string, muxOff bool) int64 {
		spec := mkSpec(name, muxOff)
		out := &syncWriter{}
		res, err := Launch(&spec, Options{Output: out})
		if err != nil {
			t.Fatalf("%s Launch: %v\nworker output:\n%s", name, err, out.String())
		}
		checkPartsEqual(t, readParts(t, spec.OutDir, spec.NumA), want)
		return res.RuntimeCounters["mpi.mux.conns"]
	}
	muxConns := run("mux", false)
	offConns := run("muxoff", true)

	// Procs workers + the controller, each dialing at most one conn per
	// destination process including itself (self-sends ride TCP too):
	// (Procs+1)^2 ordered pairs. mpi.mux.conns is the fold of each
	// process's peak simultaneous outgoing conns, so staying under the
	// pair count proves no process ever held more than one conn per peer
	// — the O(sockets) collapse the engine promises — no matter how many
	// communicators its ranks used. The stronger on-vs-off contrast lives
	// in the in-process TestMuxConnCount, where many comm-rank streams
	// share each process pair; the fleet protocol happens to use one comm
	// per pair, so the ablation can only match or exceed, never undercut.
	pairs := int64((ospec.Procs + 1) * (ospec.Procs + 1))
	if muxConns == 0 || muxConns > pairs {
		t.Errorf("mpi.mux.conns = %d with multiplexing on, want 1..%d (one conn per process pair)",
			muxConns, pairs)
	}
	if offConns < muxConns {
		t.Errorf("mux-off opened %d conns vs %d multiplexed — the ablation can never use fewer sockets",
			offConns, muxConns)
	}
}

// SIGKILL one worker process mid-shuffle: the launcher must notice the
// death, relaunch the fleet, and the job must complete from the
// surviving checkpoints with output identical to a clean run — the
// process-level analogue of the in-process rank-death chaos test.
func TestProcChaosKillWorker(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns worker processes")
	}
	base := t.TempDir()
	// Route the shm segments under the test tempdir so the SIGKILL path's
	// cleanup is observable: a killed worker can't unmap or unlink
	// anything, so the launcher must unlink its attempt's directory.
	shmParent := filepath.Join(base, "shm")
	if err := os.MkdirAll(shmParent, 0o700); err != nil {
		t.Fatal(err)
	}
	spec := JobSpec{
		App: "wordcount", NumO: 8, NumA: 4, Procs: 3,
		Lines: 1200, Seed: 3, SPLBytes: 4096,
		OutDir: filepath.Join(base, "proc"),
		FT:     true, CheckpointDir: filepath.Join(base, "cp"), CheckpointRecords: 400,
		KillRank: 1, KillAfterChunks: 1,
	}
	ospec := spec
	ospec.OutDir = filepath.Join(base, "oracle")
	ores := runOracle(t, ospec)

	out := &syncWriter{}
	res, err := Launch(&spec, Options{Output: out, ShmDir: shmParent})
	if err != nil {
		t.Fatalf("Launch after chaos: %v\nworker output:\n%s", err, out.String())
	}
	checkPartsEqual(t, readParts(t, spec.OutDir, spec.NumA), readParts(t, ospec.OutDir, spec.NumA))
	// Reloaded records are delivered from checkpoints, not re-sent, so
	// sent + reloaded must cover exactly the clean run's send volume.
	if res.RecordsSent+res.RecordsReloaded != ores.RecordsSent {
		t.Errorf("sent %d + reloaded %d = %d, want %d",
			res.RecordsSent, res.RecordsReloaded, res.RecordsSent+res.RecordsReloaded, ores.RecordsSent)
	}
	log := out.String()
	if !strings.Contains(log, "relaunching from checkpoints") {
		t.Errorf("launcher never relaunched; output:\n%s", log)
	}
	if res.RecordsReloaded == 0 {
		t.Error("recovery reloaded no checkpointed records")
	}
	// Both attempts' segment directories (the killed one's included) must
	// be gone: nothing may persist under /dev/shm after the run.
	requireNoShmLeak(t, shmParent)
}

func TestHostfileParser(t *testing.T) {
	hosts, err := ParseHostfile("# cluster\r\nlocalhost slots=4\n\n  127.0.0.1  # head node\r\n::1\n")
	if err != nil {
		t.Fatal(err)
	}
	want := []HostEntry{{"localhost", 2}, {"127.0.0.1", 4}, {"::1", 5}}
	if len(hosts) != len(want) {
		t.Fatalf("hosts = %v, want %v", hosts, want)
	}
	for i := range want {
		if hosts[i] != want[i] {
			t.Fatalf("hosts = %v, want %v", hosts, want)
		}
	}
	n, err := CheckLocalHosts(hosts)
	if err != nil || n != 3 {
		t.Fatalf("CheckLocalHosts = %d, %v", n, err)
	}
	if hosts, err := ParseHostfile("\n# only comments\n\r\n"); err != nil || len(hosts) != 0 {
		t.Fatalf("empty hostfile = %v, %v", hosts, err)
	}
}

// Hostfile failures carry a typed error naming the offending host and its
// exact line, so mpidrun can point the user into their -f file.
func TestHostfileTypedErrors(t *testing.T) {
	_, err := ParseHostfile("localhost\n\nlocalhost maxprocs=2\n")
	var he *HostfileError
	if !errors.As(err, &he) {
		t.Fatalf("ParseHostfile error %T (%v), want *HostfileError", err, err)
	}
	if he.Host != "maxprocs=2" || he.Line != 3 {
		t.Errorf("parse error = %+v, want host \"maxprocs=2\" on line 3", he)
	}
	if !strings.Contains(he.Error(), "line 3") {
		t.Errorf("Error() = %q, want the line number rendered", he.Error())
	}

	hosts, err := ParseHostfile("# head\nlocalhost\nnode7 slots=8\n")
	if err != nil {
		t.Fatal(err)
	}
	_, err = CheckLocalHosts(hosts)
	he = nil
	if !errors.As(err, &he) {
		t.Fatalf("CheckLocalHosts error %T (%v), want *HostfileError", err, err)
	}
	if he.Host != "node7" || he.Line != 3 {
		t.Errorf("check error = %+v, want host \"node7\" on line 3", he)
	}
}

func TestSpecRoundTrip(t *testing.T) {
	spec := &JobSpec{App: "terasort", NumO: 4, NumA: 2, Procs: 2,
		Records: 100, OutDir: "/tmp/x", KillRank: 1, KillAfterChunks: 5}
	enc, err := encodeSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeSpec(enc)
	if err != nil {
		t.Fatal(err)
	}
	if *got != *spec {
		t.Fatalf("round trip %+v != %+v", got, spec)
	}
	if _, err := decodeSpec(""); err == nil {
		t.Fatal("empty spec accepted")
	}
	if _, err := decodeSpec("{bad json"); err == nil {
		t.Fatal("garbage spec accepted")
	}
	bad := &JobSpec{App: "pagerank", NumO: 1, NumA: 1, Procs: 1, OutDir: "x"}
	if err := bad.Normalize(); err == nil {
		t.Fatal("unsupported app accepted")
	}
}
