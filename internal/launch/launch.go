package launch

import (
	"context"
	"fmt"
	"io"
	"os"

	"datampi/internal/core"
	"datampi/internal/trace"
)

// maxAttempts bounds fault-tolerant relaunches of a spec run: the first
// attempt plus up to two recoveries from worker-process death.
const maxAttempts = 3

// Options tunes Launch.
type Options struct {
	// Exe/Args override the worker image (default: re-execute this
	// binary with no arguments; the worker entry must route on
	// IsSpawnedWorker before flag parsing).
	Exe  string
	Args []string
	// Output receives prefixed worker output (default os.Stderr).
	Output io.Writer
	// Trace, when non-nil, collects the merged cross-process trace: the
	// master's spans plus every worker's, shifted onto the master clock.
	Trace *trace.Tracer
	// Ctx bounds the whole run (default context.Background()).
	Ctx context.Context
	// ShmDir overrides where the shared-memory segment directory is
	// created (default mpi.ShmBaseDir()). Tests use it to verify the
	// segment lifecycle; production runs leave it empty.
	ShmDir string
}

// Launch runs a built-in application spec across real worker OS
// processes: spawn, rendezvous, distributed run, and — when the spec has
// fault tolerance on and a worker process dies — a whole-attempt restart
// that recovers from the surviving checkpoints.
func Launch(spec *JobSpec, opt Options) (*core.Result, error) {
	if err := spec.Normalize(); err != nil {
		return nil, err
	}
	if opt.Ctx == nil {
		opt.Ctx = context.Background()
	}
	if err := os.MkdirAll(spec.OutDir, 0o755); err != nil {
		return nil, err
	}
	specEnv, err := encodeSpec(spec)
	if err != nil {
		return nil, err
	}
	var lastErr error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		res, err := launchAttempt(spec, specEnv, opt, attempt)
		if err == nil {
			return res, nil
		}
		lastErr = err
		if !spec.FT || !workerDied(err) {
			return nil, err
		}
		if opt.Output != nil {
			fmt.Fprintf(opt.Output, "[launcher] attempt %d failed (%v); relaunching from checkpoints\n", attempt, err)
		}
	}
	return nil, fmt.Errorf("launch: giving up after %d attempts: %w", maxAttempts, lastErr)
}

func launchAttempt(spec *JobSpec, specEnv string, opt Options, attempt int) (*core.Result, error) {
	cluster, err := StartCluster(ClusterConfig{
		Procs:         spec.Procs,
		Exe:           opt.Exe,
		Args:          opt.Args,
		ExtraEnv:      []string{EnvSpec + "=" + specEnv},
		Attempt:       attempt,
		IOTimeout:     spec.IOTimeout(),
		Output:        opt.Output,
		CoalesceOff:   spec.CoalesceOff,
		MuxOff:        spec.MuxOff,
		ShmOff:        spec.ShmOff,
		ShmDir:        opt.ShmDir,
		ChunkBytes:    spec.ChunkBytes,
		MaxFrameBytes: spec.MaxFrameBytes,
	})
	if err != nil {
		return nil, err
	}
	job := spec.BuildJob(-1, attempt, opt.Trace)
	runOpts := []core.RunOption{core.WithWorld(cluster.World())}
	if spec.PartialRestart {
		runOpts = append(runOpts, core.WithRespawn(cluster.Respawn))
	}
	res, err := core.RunContext(opt.Ctx, job, runOpts...)
	cluster.Shutdown()
	return res, err
}

// RunSpawnedWorker is the worker-process entry for spec-based launches
// (mpidrun's built-in applications): join the cluster, rebuild the job
// from DATAMPI_SPEC, and serve this rank until the master shuts us down.
// Call only when IsSpawnedWorker() is true; the caller should os.Exit
// non-zero on error.
func RunSpawnedWorker() error {
	spec, err := decodeSpec(os.Getenv(EnvSpec))
	if err != nil {
		return err
	}
	if err := spec.Normalize(); err != nil {
		return err
	}
	w, err := JoinAsWorker()
	if err != nil {
		return err
	}
	// Workers always trace; the buffer rides back to the master on the
	// final bye and merges into the launcher's tracer if one is active.
	job := spec.BuildJob(w.Rank, w.Attempt, trace.New())
	return core.RunWorker(job, w.World, w.Rank)
}
