// Package launch makes mpidrun a real launcher (§IV-B): it spawns one
// worker OS process per rank by re-executing the current binary, brings
// the cluster up over a TCP rendezvous, and runs the job cross-process
// over the existing MPI transport — the master scheduling exactly as it
// does in-process, each worker hosting one DataMPI process.
//
// The spawn protocol is environment-based so any binary can serve as the
// worker image: the launcher re-executes itself with DATAMPI_WORKER_RANK
// set, and the program's entry point routes to the worker loop before
// doing anything else (datampi.RunWorkerIfSpawned, or RunSpawnedWorker
// for the built-in mpidrun applications).
package launch

import (
	"fmt"
	"io"
	"os"
	"strconv"
	"time"

	"datampi/internal/mpi"
)

// Environment variables carrying the spawn protocol from launcher to
// worker. DATAMPI_SPEC is only set by the spec-based entry points.
const (
	EnvWorkerRank = "DATAMPI_WORKER_RANK"
	EnvProcs      = "DATAMPI_PROCS"
	EnvRendezvous = "DATAMPI_RENDEZVOUS"
	EnvAttempt    = "DATAMPI_ATTEMPT"
	EnvIOTimeout  = "DATAMPI_IOTIMEOUT_MS"
	EnvSpec       = "DATAMPI_SPEC"
	// EnvCoalesce / EnvMux carry the transport progress-engine knobs so
	// worker worlds run the same engine configuration as the master's:
	// EnvCoalesce is "off" (ablation), "" (engine defaults), or
	// "<bytes>,<deadline_us>"; EnvMux is "off" (ablation) or "".
	EnvCoalesce = "DATAMPI_COALESCE"
	EnvMux      = "DATAMPI_MUX"
	// EnvShmDir is the launcher's shared-memory segment directory. A
	// worker that can read its nonce advertises the derived host identity
	// alongside its TCP address and maps the rings; unset (or unreadable)
	// means this worker pairs over TCP only. Respawn replacements never
	// receive it — their rings hold a dead incarnation's state.
	EnvShmDir = "DATAMPI_SHM_DIR"
	// EnvDrain overrides the transport's close-time drain barrier bound,
	// in milliseconds (mpi.WithDrainTimeout).
	EnvDrain = "DATAMPI_DRAIN_MS"
	// EnvChunk / EnvMaxFrame carry the chunked-transfer threshold and the
	// send-side frame cap in bytes (mpi.WithChunkBytes / mpi.WithMaxFrame)
	// so worker worlds chunk exactly as the master's does.
	EnvChunk    = "DATAMPI_CHUNK_BYTES"
	EnvMaxFrame = "DATAMPI_MAXFRAME_BYTES"
)

// orphanExit is the exit code of a worker whose launcher disappeared
// (stdin EOF watchdog).
const orphanExit = 3

// IsSpawnedWorker reports whether this process was spawned as a DataMPI
// worker by a launcher. Programs must check it (via RunSpawnedWorker or
// datampi.RunWorkerIfSpawned) before flag parsing or any other work.
func IsSpawnedWorker() bool { return os.Getenv(EnvWorkerRank) != "" }

// Worker is a spawned worker process's view of the cluster after the
// rendezvous: its joined world plus the launch parameters.
type Worker struct {
	World     *mpi.World
	Rank      int
	Procs     int
	Attempt   int
	IOTimeout time.Duration
}

// JoinAsWorker completes a spawned worker's side of the bootstrap: it
// starts the orphan watchdog, opens this process's transport endpoint,
// registers with the launcher's rendezvous, and joins the distributed
// world. Call only when IsSpawnedWorker() is true.
func JoinAsWorker() (*Worker, error) {
	rank, err := envInt(EnvWorkerRank, -1)
	if err != nil {
		return nil, err
	}
	procs, err := envInt(EnvProcs, -1)
	if err != nil {
		return nil, err
	}
	if rank < 0 || procs <= 0 || rank >= procs {
		return nil, fmt.Errorf("launch: bad worker env rank=%d procs=%d", rank, procs)
	}
	rvAddr := os.Getenv(EnvRendezvous)
	if rvAddr == "" {
		return nil, fmt.Errorf("launch: %s not set", EnvRendezvous)
	}
	attempt, _ := envInt(EnvAttempt, 0)
	ioms, _ := envInt(EnvIOTimeout, 0)
	ioTimeout := time.Duration(ioms) * time.Millisecond

	// If the launcher dies, its end of our stdin pipe closes; exit rather
	// than linger as an orphan holding ports and checkpoint files.
	go func() {
		io.Copy(io.Discard, os.Stdin)
		os.Exit(orphanExit)
	}()

	ep, err := mpi.ListenEndpoint()
	if err != nil {
		return nil, err
	}
	// Advertise the shm host identity alongside the TCP address when the
	// launcher shipped a segment directory we can actually read; peers
	// that derive the same identity select the ring transport for this
	// pair at connection time, everyone else dials TCP.
	selfAddr := ep.Addr()
	var wopts []mpi.Option
	if shmDir := os.Getenv(EnvShmDir); shmDir != "" {
		if hid, err := mpi.ShmHostID(shmDir); err == nil {
			selfAddr = mpi.ShmAddr(selfAddr, hid)
			wopts = append(wopts, mpi.WithShmSegments(shmDir))
		}
	}
	dir, err := mpi.JoinRendezvous(rvAddr, rank, selfAddr, bootstrapTimeout)
	if err != nil {
		ep.Close()
		return nil, err
	}
	if ioTimeout > 0 {
		wopts = append(wopts, mpi.WithSendTimeout(ioTimeout))
	}
	engOpts, err := engineEnvOptions()
	if err != nil {
		ep.Close()
		return nil, err
	}
	wopts = append(wopts, engOpts...)
	world, err := mpi.JoinWorld(procs+1, rank, ep, dir, wopts...)
	if err != nil {
		ep.Close()
		return nil, err
	}
	return &Worker{World: world, Rank: rank, Procs: procs,
		Attempt: attempt, IOTimeout: ioTimeout}, nil
}

// engineEnvOptions parses the progress-engine spawn variables (EnvCoalesce,
// EnvMux) into world options for JoinWorld. Unset variables select the
// engine defaults.
func engineEnvOptions() ([]mpi.Option, error) {
	var opts []mpi.Option
	switch v := os.Getenv(EnvCoalesce); v {
	case "":
	case "off":
		opts = append(opts, mpi.WithCoalesceOff())
	default:
		var bytes, us int
		if _, err := fmt.Sscanf(v, "%d,%d", &bytes, &us); err != nil {
			return nil, fmt.Errorf("launch: bad %s=%q: %w", EnvCoalesce, v, err)
		}
		opts = append(opts, mpi.WithCoalesce(bytes, time.Duration(us)*time.Microsecond))
	}
	if os.Getenv(EnvMux) == "off" {
		opts = append(opts, mpi.WithMuxOff())
	}
	if ms, err := envInt(EnvDrain, 0); err != nil {
		return nil, err
	} else if ms > 0 {
		opts = append(opts, mpi.WithDrainTimeout(time.Duration(ms)*time.Millisecond))
	}
	if n, err := envInt(EnvChunk, 0); err != nil {
		return nil, err
	} else if n > 0 {
		opts = append(opts, mpi.WithChunkBytes(n))
	}
	if n, err := envInt(EnvMaxFrame, 0); err != nil {
		return nil, err
	} else if n > 0 {
		opts = append(opts, mpi.WithMaxFrame(n))
	}
	return opts, nil
}

func envInt(key string, def int) (int, error) {
	s := os.Getenv(key)
	if s == "" {
		return def, nil
	}
	v, err := strconv.Atoi(s)
	if err != nil {
		return def, fmt.Errorf("launch: bad %s=%q: %w", key, s, err)
	}
	return v, nil
}
