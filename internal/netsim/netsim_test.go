package netsim

import (
	"sync"
	"testing"
	"time"
)

func TestTransferAccounting(t *testing.T) {
	l := NewLink(GigE1)
	l.Transfer(1000, 100, 2)
	l.Transfer(500, 0, 0)
	s := l.Stats()
	if s.PayloadBytes != 1500 {
		t.Errorf("payload = %d, want 1500", s.PayloadBytes)
	}
	if s.OverheadBytes != 100 {
		t.Errorf("overhead = %d, want 100", s.OverheadBytes)
	}
	if s.RoundTrips != 2 {
		t.Errorf("trips = %d, want 2", s.RoundTrips)
	}
	if s.Busy <= 0 {
		t.Error("busy time not accumulated")
	}
}

func TestTransferVirtualTime(t *testing.T) {
	l := NewLink(Profile{Name: "test", Bandwidth: 1e6, RTT: time.Millisecond})
	d := l.Transfer(1e6, 0, 1)
	want := time.Second + time.Millisecond
	if d != want {
		t.Errorf("duration = %v, want %v", d, want)
	}
}

func TestUnlimitedChargesOnlyCounters(t *testing.T) {
	l := NewLink(Unlimited)
	d := l.Transfer(1<<30, 0, 0)
	if d != 0 {
		t.Errorf("unlimited link should take zero time, got %v", d)
	}
	if l.Stats().PayloadBytes != 1<<30 {
		t.Error("bytes not counted")
	}
}

func TestGoodput(t *testing.T) {
	l := NewLink(Profile{Name: "test", Bandwidth: 100, RTT: 0})
	l.Transfer(50, 50, 0) // 100 bytes at 100 B/s = 1 s busy, 50 useful
	g := l.Stats().Goodput()
	if g < 49 || g > 51 {
		t.Errorf("goodput = %v, want ~50", g)
	}
	if (Stats{}).Goodput() != 0 {
		t.Error("zero stats should give zero goodput")
	}
}

func TestReset(t *testing.T) {
	l := NewLink(GigE10)
	l.Transfer(10, 10, 1)
	l.Reset()
	if s := l.Stats(); s != (Stats{}) {
		t.Errorf("after reset: %+v", s)
	}
}

func TestThrottledLinkSleeps(t *testing.T) {
	// 1 MB at 10 MB/s should take ~100 ms even when sent concurrently.
	l := NewThrottledLink(Profile{Name: "slow", Bandwidth: 10e6})
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			l.Transfer(250_000, 0, 0)
		}()
	}
	wg.Wait()
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Errorf("throttled transfer finished too fast: %v", el)
	}
}

func TestProfilesSane(t *testing.T) {
	if !(InfiniBand.Bandwidth > GigE10.Bandwidth && GigE10.Bandwidth > GigE1.Bandwidth) {
		t.Error("profile bandwidth ordering wrong")
	}
	if !(GigE1.RTT > GigE10.RTT && GigE10.RTT > InfiniBand.RTT) {
		t.Error("profile RTT ordering wrong")
	}
}
