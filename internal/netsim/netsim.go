// Package netsim models the networks the paper evaluates on (1GigE, 10GigE,
// and 16 Gb/s InfiniBand/IPoIB) as shaped links. Every byte either engine
// moves can be charged to a Link, which:
//
//   - accounts payload and protocol-overhead bytes and round trips,
//   - accumulates the virtual time the transfer occupies on the wire
//     (serialized, like a single NIC), and
//   - optionally throttles in real time so an engine run actually
//     experiences the link speed.
//
// The virtual-time view makes primitive-level experiments (Fig. 1)
// deterministic: achieved bandwidth = payload bytes / virtual busy time,
// with protocol overheads measured from the real protocol implementations.
package netsim

import (
	"sync"
	"sync/atomic"
	"time"
)

// Profile describes a network. Bandwidth is in bytes/second; RTT is the
// round-trip latency used to charge request/response exchanges.
type Profile struct {
	Name      string
	Bandwidth float64
	RTT       time.Duration
}

// The three networks from the paper's Figure 1.
var (
	// GigE1 is 1 Gigabit Ethernet: ~125 MB/s, typical LAN RTT.
	GigE1 = Profile{Name: "1GigE", Bandwidth: 125e6, RTT: 100 * time.Microsecond}
	// GigE10 is 10 Gigabit Ethernet: ~1250 MB/s.
	GigE10 = Profile{Name: "10GigE", Bandwidth: 1250e6, RTT: 40 * time.Microsecond}
	// InfiniBand is the paper's 16 Gb/s IB/IPoIB: ~2000 MB/s, low latency.
	InfiniBand = Profile{Name: "IB/IPoIB(16Gbps)", Bandwidth: 2000e6, RTT: 15 * time.Microsecond}
	// Unlimited disables shaping; transfers are only counted.
	Unlimited = Profile{Name: "unlimited", Bandwidth: 0, RTT: 0}
)

// Link is one shared, serialized network link.
type Link struct {
	prof     Profile
	throttle bool

	payload  atomic.Int64
	overhead atomic.Int64
	trips    atomic.Int64
	busyNS   atomic.Int64

	mu       sync.Mutex
	nextFree time.Time
}

// NewLink returns an accounting-only link with the given profile.
func NewLink(p Profile) *Link { return &Link{prof: p} }

// NewThrottledLink returns a link that sleeps callers so transfers really
// proceed at the profile's bandwidth (shared across all callers).
func NewThrottledLink(p Profile) *Link { return &Link{prof: p, throttle: true} }

// Profile returns the link's network profile.
func (l *Link) Profile() Profile { return l.prof }

// Transfer charges one message: payload bytes of useful data, overhead
// bytes of protocol framing, and rtts request/response round trips. It
// returns the virtual time the transfer occupies. If the link is throttled
// it also sleeps for that duration (serialized with other senders).
func (l *Link) Transfer(payload, overhead int64, rtts int) time.Duration {
	l.payload.Add(payload)
	l.overhead.Add(overhead)
	l.trips.Add(int64(rtts))
	var d time.Duration
	if l.prof.Bandwidth > 0 {
		d = time.Duration(float64(payload+overhead) / l.prof.Bandwidth * float64(time.Second))
	}
	d += time.Duration(rtts) * l.prof.RTT
	l.busyNS.Add(int64(d))
	if l.throttle && d > 0 {
		l.mu.Lock()
		now := time.Now()
		if l.nextFree.Before(now) {
			l.nextFree = now
		}
		l.nextFree = l.nextFree.Add(d)
		wake := l.nextFree
		l.mu.Unlock()
		time.Sleep(time.Until(wake))
	}
	return d
}

// Stats is a snapshot of a link's accounting counters.
type Stats struct {
	PayloadBytes  int64
	OverheadBytes int64
	RoundTrips    int64
	Busy          time.Duration
}

// Stats returns the current counters.
func (l *Link) Stats() Stats {
	return Stats{
		PayloadBytes:  l.payload.Load(),
		OverheadBytes: l.overhead.Load(),
		RoundTrips:    l.trips.Load(),
		Busy:          time.Duration(l.busyNS.Load()),
	}
}

// Reset zeroes the counters (the virtual clock restarts too).
func (l *Link) Reset() {
	l.payload.Store(0)
	l.overhead.Store(0)
	l.trips.Store(0)
	l.busyNS.Store(0)
}

// Goodput computes the achieved useful bandwidth (payload bytes per second
// of virtual wire time). It reports 0 when nothing was transferred.
func (s Stats) Goodput() float64 {
	if s.Busy <= 0 {
		return 0
	}
	return float64(s.PayloadBytes) / s.Busy.Seconds()
}
