// Package fault provides deterministic, seed-driven communication fault
// injection for the DataMPI transports. A Plan is pure data — a seed plus a
// list of Rules scoped to (src, dst) world-rank pairs and per-pair message
// windows — and an Injector evaluates it. Every decision is a pure function
// of (seed, src, dst, per-pair sequence number, rule index), so a given
// plan produces the same faults on every run regardless of goroutine
// scheduling, as long as each sender's per-destination message order is
// stable. Wall-clock time never enters a decision.
//
// The fault kinds mirror what a real cluster network does to a message:
// drop it, delay it, duplicate it, reorder it against its successor, reset
// the underlying connection, or kill the sending process outright. The mpi
// package composes an Injector over either transport (channel or TCP); the
// core runtime exposes it through Config so jobs can be run under chaos.
package fault

import (
	"fmt"
	"sync"
	"time"
)

// Kind enumerates the injectable fault types.
type Kind int

const (
	// Drop silently discards the message.
	Drop Kind = iota
	// Delay holds the message (and, to preserve per-pair ordering,
	// everything behind it on the same (src, dst) link) for a deterministic
	// latency in [0, Rule.Latency).
	Delay
	// Duplicate delivers the message twice.
	Duplicate
	// Reorder swaps the message with the next one sent on the same
	// (src, dst) pair.
	Reorder
	// Reset tears down the transport connection for the pair immediately
	// before the message is written, forcing the sender through its
	// reconnect/retry path. With sender-side retry this is survivable and
	// lossless.
	Reset
	// Kill marks the source rank dead once it has sent Rule.After
	// messages: the crossing send and every later operation involving the
	// rank fail with the transport's rank-dead error.
	Kill
)

// String returns the kind's name.
func (k Kind) String() string {
	switch k {
	case Drop:
		return "drop"
	case Delay:
		return "delay"
	case Duplicate:
		return "duplicate"
	case Reorder:
		return "reorder"
	case Reset:
		return "reset"
	case Kill:
		return "kill"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Any matches every rank when used as a Rule's Src or Dst.
const Any = -1

// Rule scopes one fault kind to a (src, dst) pair and a message window.
type Rule struct {
	Kind Kind
	// Src and Dst are world ranks; Any matches all. Kill uses only Src.
	Src, Dst int
	// Prob is the per-message firing probability in [0, 1]. Kill ignores
	// it (death is a threshold, not a coin flip).
	Prob float64
	// From and To bound the rule to per-pair message sequence numbers
	// (0-based) in [From, To). To == 0 means unbounded. This is the
	// "time window" of the plan, expressed in message counts so it stays
	// deterministic.
	From, To int64
	// Latency is the maximum injected delay for Delay rules; the actual
	// delay is deterministic in [0, Latency).
	Latency time.Duration
	// After is the Kill threshold: the rank dies once it has sent this
	// many messages (0 kills it on its first send).
	After int64
}

// matches reports whether the rule applies to pair (src, dst) at per-pair
// sequence number seq.
func (r Rule) matches(src, dst int, seq int64) bool {
	if r.Src != Any && r.Src != src {
		return false
	}
	if r.Dst != Any && r.Dst != dst {
		return false
	}
	if seq < r.From {
		return false
	}
	if r.To > 0 && seq >= r.To {
		return false
	}
	return true
}

// Plan is a deterministic fault schedule: pure data, safe to share.
type Plan struct {
	Seed  uint64
	Rules []Rule
}

// LinkChaos returns a plan injecting benign, semantics-preserving link
// faults everywhere: probabilistic delays up to maxLatency and (on
// transports with connections) resets. Every correct program must survive
// it unchanged.
func LinkChaos(seed uint64, prob float64, maxLatency time.Duration) *Plan {
	return &Plan{
		Seed: seed,
		Rules: []Rule{
			{Kind: Delay, Src: Any, Dst: Any, Prob: prob, Latency: maxLatency},
			{Kind: Reset, Src: Any, Dst: Any, Prob: prob / 4},
		},
	}
}

// KillRank returns a plan under which rank dies after sending after
// messages.
func KillRank(seed uint64, rank int, after int64) *Plan {
	return &Plan{
		Seed:  seed,
		Rules: []Rule{{Kind: Kill, Src: rank, After: after}},
	}
}

// Action is the injector's verdict for one message.
type Action struct {
	// SrcDead / DstDead report that the sending / receiving rank is dead;
	// the transport should fail the operation with its rank-dead error.
	SrcDead, DstDead bool
	Drop             bool
	Duplicate        bool
	Reorder          bool
	Reset            bool
	Latency          time.Duration
}

// Injector evaluates a Plan. It is safe for concurrent use; per-pair
// sequence counters make its decisions independent of interleaving across
// pairs.
type Injector struct {
	plan Plan

	mu        sync.Mutex
	seq       map[[2]int]int64 // per (src, dst) messages seen
	sent      map[int]int64    // per src messages seen (Kill threshold)
	dead      map[int]bool
	listeners []func(rank int)
}

// NewInjector builds an injector for the plan. A nil plan yields a
// pass-through injector that never injects anything.
func NewInjector(p *Plan) *Injector {
	in := &Injector{
		seq:  map[[2]int]int64{},
		sent: map[int]int64{},
		dead: map[int]bool{},
	}
	if p != nil {
		in.plan = *p
		in.plan.Rules = append([]Rule(nil), p.Rules...)
	}
	return in
}

// OnSend records one message from src to dst and returns the faults to
// apply to it.
func (in *Injector) OnSend(src, dst int) Action {
	in.mu.Lock()
	var act Action
	pair := [2]int{src, dst}
	seq := in.seq[pair]
	in.seq[pair] = seq + 1
	in.sent[src]++
	var died bool
	for i, r := range in.plan.Rules {
		switch r.Kind {
		case Kill:
			if (r.Src == Any || r.Src == src) && !in.dead[src] && in.sent[src] > r.After {
				in.dead[src] = true
				died = true
			}
		default:
			if !r.matches(src, dst, seq) {
				continue
			}
			if r.Prob < 1 && u01(in.plan.Seed, src, dst, seq, i) >= r.Prob {
				continue
			}
			switch r.Kind {
			case Drop:
				act.Drop = true
			case Delay:
				if r.Latency > 0 {
					// A second hash draw so the delay amount is independent
					// of the firing decision.
					act.Latency = time.Duration(u01(in.plan.Seed^0x9e3779b97f4a7c15, src, dst, seq, i) * float64(r.Latency))
				}
			case Duplicate:
				act.Duplicate = true
			case Reorder:
				act.Reorder = true
			case Reset:
				act.Reset = true
			}
		}
	}
	act.SrcDead = in.dead[src]
	act.DstDead = in.dead[dst]
	var fire []func(int)
	if died {
		fire = append(fire, in.listeners...)
	}
	in.mu.Unlock()
	for _, fn := range fire {
		fn(src)
	}
	return act
}

// Kill marks a rank dead immediately (a cooperative kill, for tests that
// need a death not tied to a send count).
func (in *Injector) Kill(rank int) {
	in.mu.Lock()
	already := in.dead[rank]
	in.dead[rank] = true
	var fire []func(int)
	if !already {
		fire = append(fire, in.listeners...)
	}
	in.mu.Unlock()
	for _, fn := range fire {
		fn(rank)
	}
}

// Dead reports whether a rank has died.
func (in *Injector) Dead(rank int) bool {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.dead[rank]
}

// Subscribe registers a callback fired (outside the injector's lock) each
// time a rank dies. Ranks already dead at subscription time are replayed.
func (in *Injector) Subscribe(fn func(rank int)) {
	in.mu.Lock()
	in.listeners = append(in.listeners, fn)
	var replay []int
	for r, d := range in.dead {
		if d {
			replay = append(replay, r)
		}
	}
	in.mu.Unlock()
	for _, r := range replay {
		fn(r)
	}
}

// u01 hashes the decision coordinates to a uniform float64 in [0, 1).
func u01(seed uint64, src, dst int, seq int64, rule int) float64 {
	x := seed
	x ^= uint64(src)*0x9e3779b97f4a7c15 + uint64(dst)*0xc2b2ae3d27d4eb4f
	x ^= uint64(seq)*0x165667b19e3779f9 + uint64(rule)*0xd6e8feb86659fd93
	// splitmix64 finalizer.
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
