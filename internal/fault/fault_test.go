package fault

import (
	"testing"
	"time"
)

// decisions replays n messages on pair (src, dst) and returns the actions.
func decisions(in *Injector, src, dst, n int) []Action {
	out := make([]Action, n)
	for i := range out {
		out[i] = in.OnSend(src, dst)
	}
	return out
}

func TestDeterministicAcrossInjectors(t *testing.T) {
	plan := &Plan{Seed: 42, Rules: []Rule{
		{Kind: Drop, Src: Any, Dst: Any, Prob: 0.3},
		{Kind: Delay, Src: Any, Dst: Any, Prob: 0.5, Latency: 3 * time.Millisecond},
		{Kind: Duplicate, Src: 0, Dst: 1, Prob: 0.2},
	}}
	a := decisions(NewInjector(plan), 0, 1, 500)
	b := decisions(NewInjector(plan), 0, 1, 500)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %+v vs %+v", i, a[i], b[i])
		}
	}
	var fired int
	for _, act := range a {
		if act.Drop || act.Duplicate || act.Latency > 0 {
			fired++
		}
	}
	if fired == 0 {
		t.Error("no fault ever fired over 500 messages")
	}
}

func TestPairIsolation(t *testing.T) {
	// Decisions on one pair must not depend on traffic on other pairs.
	plan := &Plan{Seed: 7, Rules: []Rule{{Kind: Drop, Src: Any, Dst: Any, Prob: 0.4}}}
	solo := decisions(NewInjector(plan), 2, 3, 200)
	mixed := NewInjector(plan)
	var interleaved []Action
	for i := 0; i < 200; i++ {
		mixed.OnSend(0, 1) // unrelated traffic
		interleaved = append(interleaved, mixed.OnSend(2, 3))
		mixed.OnSend(1, 0)
	}
	for i := range solo {
		if solo[i].Drop != interleaved[i].Drop {
			t.Fatalf("pair (2,3) decision %d changed under unrelated traffic", i)
		}
	}
}

func TestSeedChangesDecisions(t *testing.T) {
	mk := func(seed uint64) []Action {
		return decisions(NewInjector(&Plan{Seed: seed, Rules: []Rule{
			{Kind: Drop, Src: Any, Dst: Any, Prob: 0.5},
		}}), 0, 1, 200)
	}
	a, b := mk(1), mk(2)
	same := 0
	for i := range a {
		if a[i].Drop == b[i].Drop {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical decisions")
	}
}

func TestWindowBounds(t *testing.T) {
	plan := &Plan{Seed: 1, Rules: []Rule{
		{Kind: Drop, Src: Any, Dst: Any, Prob: 1, From: 10, To: 20},
	}}
	acts := decisions(NewInjector(plan), 0, 1, 30)
	for i, act := range acts {
		want := i >= 10 && i < 20
		if act.Drop != want {
			t.Errorf("message %d: drop=%v, want %v", i, act.Drop, want)
		}
	}
}

func TestKillAfterThreshold(t *testing.T) {
	in := NewInjector(KillRank(3, 1, 5))
	for i := 0; i < 5; i++ {
		if act := in.OnSend(1, 0); act.SrcDead {
			t.Fatalf("rank 1 dead after only %d sends", i+1)
		}
	}
	if act := in.OnSend(1, 0); !act.SrcDead {
		t.Fatal("rank 1 still alive after crossing threshold")
	}
	if !in.Dead(1) {
		t.Error("Dead(1) = false")
	}
	if act := in.OnSend(0, 1); !act.DstDead {
		t.Error("send to dead rank not flagged")
	}
	if act := in.OnSend(0, 2); act.SrcDead || act.DstDead {
		t.Error("unrelated pair flagged dead")
	}
}

func TestSubscribeFiresOnceAndReplays(t *testing.T) {
	in := NewInjector(nil)
	var got []int
	in.Subscribe(func(r int) { got = append(got, r) })
	in.Kill(4)
	in.Kill(4) // idempotent
	if len(got) != 1 || got[0] != 4 {
		t.Fatalf("listener calls = %v, want [4]", got)
	}
	var late []int
	in.Subscribe(func(r int) { late = append(late, r) })
	if len(late) != 1 || late[0] != 4 {
		t.Errorf("late subscriber replay = %v, want [4]", late)
	}
}

func TestNilPlanPassThrough(t *testing.T) {
	in := NewInjector(nil)
	for i := 0; i < 100; i++ {
		if act := in.OnSend(0, 1); act != (Action{}) {
			t.Fatalf("nil plan injected %+v", act)
		}
	}
}
