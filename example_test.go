package datampi_test

import (
	"fmt"
	"sort"
	"sync"

	"datampi"
)

// ExampleRun runs the paper's canonical bipartite job: O tasks emit
// (word, 1) pairs, the library partitions/sorts/routes them, and A tasks
// fold each word's group into a count — WordCount in the MapReduce mode.
func ExampleRun() {
	docs := []string{
		"hello world",
		"hello datampi world",
	}
	var mu sync.Mutex
	counts := map[string]int{}

	job := &datampi.Job{
		Mode: datampi.MapReduce,
		Conf: datampi.Config{ValueCodec: datampi.Int64Codec},
		NumO: len(docs),
		NumA: 2,
		OTask: func(ctx *datampi.Context) error {
			for _, w := range splitWords(docs[ctx.Rank()]) {
				if err := ctx.Send(w, int64(1)); err != nil {
					return err
				}
			}
			return nil
		},
		ATask: func(ctx *datampi.Context) error {
			for {
				g, ok, err := ctx.NextGroup()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				mu.Lock()
				counts[string(g.Key)] = len(g.Values)
				mu.Unlock()
			}
		},
	}
	if _, err := datampi.Run(job); err != nil {
		panic(err)
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		fmt.Printf("%s %d\n", w, counts[w])
	}
	// Output:
	// datampi 1
	// hello 2
	// world 2
}

func splitWords(s string) []string {
	var out []string
	word := ""
	for _, r := range s {
		if r == ' ' {
			if word != "" {
				out = append(out, word)
			}
			word = ""
			continue
		}
		word += string(r)
	}
	if word != "" {
		out = append(out, word)
	}
	return out
}
