package datampi_test

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"

	"datampi"
)

// ExampleRun runs the paper's canonical bipartite job: O tasks emit
// (word, 1) pairs, the library partitions/sorts/routes them, and A tasks
// fold each word's group into a count — WordCount in the MapReduce mode.
func ExampleRun() {
	docs := []string{
		"hello world",
		"hello datampi world",
	}
	var mu sync.Mutex
	counts := map[string]int{}

	job := &datampi.Job{
		Mode: datampi.MapReduce,
		Conf: datampi.Config{ValueCodec: datampi.Int64Codec},
		NumO: len(docs),
		NumA: 2,
		OTask: func(ctx *datampi.Context) error {
			for _, w := range splitWords(docs[ctx.Rank()]) {
				if err := ctx.Send(w, int64(1)); err != nil {
					return err
				}
			}
			return nil
		},
		ATask: func(ctx *datampi.Context) error {
			for {
				g, ok, err := ctx.NextGroup()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				mu.Lock()
				counts[string(g.Key)] = len(g.Values)
				mu.Unlock()
			}
		},
	}
	if _, err := datampi.Run(job); err != nil {
		panic(err)
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Strings(words)
	for _, w := range words {
		fmt.Printf("%s %d\n", w, counts[w])
	}
	// Output:
	// datampi 1
	// hello 2
	// world 2
}

// ExampleRunContext bounds a job with a context: when the deadline (or a
// cancel) fires, the run aborts cleanly and the returned error unwraps to
// the context's error through the *datampi.RunError wrapper.
func ExampleRunContext() {
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()

	job := &datampi.Job{
		Mode: datampi.MapReduce,
		NumO: 2,
		NumA: 1,
		OTask: func(c *datampi.Context) error {
			for i := 0; ; i++ { // emits forever: only the deadline stops it
				if err := c.Send(fmt.Sprintf("key-%d", i%10), "v"); err != nil {
					return err
				}
			}
		},
		ATask: func(c *datampi.Context) error {
			for {
				if _, ok, err := c.NextGroup(); err != nil {
					return err
				} else if !ok {
					return nil
				}
			}
		},
	}
	_, err := datampi.RunContext(ctx, job)
	fmt.Println("deadline exceeded:", errors.Is(err, context.DeadlineExceeded))

	var re *datampi.RunError
	if errors.As(err, &re) {
		fmt.Println("failed phase:", re.Phase)
	}
	// Output:
	// deadline exceeded: true
	// failed phase: run
}

// ExampleWithCounters opts in to the built-in runtime counters — shuffle
// volume, combine and spill traffic — and sizes the shuffle pipelines
// explicitly with the worker-pool options.
func ExampleWithCounters() {
	job := &datampi.Job{
		Mode: datampi.MapReduce,
		Conf: datampi.Config{ValueCodec: datampi.Int64Codec},
		NumO: 2,
		NumA: 1,
		OTask: func(c *datampi.Context) error {
			for i := 0; i < 50; i++ {
				if err := c.Send(fmt.Sprintf("key-%d", i%7), int64(i)); err != nil {
					return err
				}
			}
			return nil
		},
		ATask: func(c *datampi.Context) error {
			for {
				if _, ok, err := c.NextGroup(); err != nil {
					return err
				} else if !ok {
					return nil
				}
			}
		},
	}
	res, err := datampi.Run(job,
		datampi.WithTransport(datampi.TransportConfig{Kind: datampi.TransportMem}),
		datampi.WithCounters(),
		datampi.WithPrepareWorkers(2),
		datampi.WithMergeWorkers(2),
		datampi.WithTrace(io.Discard),
	)
	if err != nil {
		panic(err)
	}
	fmt.Println("records sent:", res.RuntimeCounters["shuffle.records.sent"])
	fmt.Println("records received:", res.RuntimeCounters["shuffle.records.received"])
	// Output:
	// records sent: 100
	// records received: 100
}

// ExampleContext_SendValue streams a value far larger than the chunk
// threshold through the shuffle without ever materializing it: the O side
// reads it chunk-by-chunk from any io.Reader of known length, the
// transport carries sequenced continuation frames, and the A side streams
// it back out of a disk-backed store through Group.ValueReader — peak
// memory stays O(chunk size) on both sides no matter how large the value.
func ExampleContext_SendValue() {
	const valueLen = 64 << 10
	job := &datampi.Job{
		Mode: datampi.MapReduce,
		NumO: 1,
		NumA: 1,
		OTask: func(c *datampi.Context) error {
			// Any reader works: a file, a network stream — here an
			// in-memory pattern standing in for a large attachment.
			value := bytes.NewReader(bytes.Repeat([]byte("v"), valueLen))
			return c.SendValue([]byte("clip-0001"), value, valueLen)
		},
		ATask: func(c *datampi.Context) error {
			for {
				g, ok, err := c.NextGroup()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				r, err := g.ValueReader(0)
				if err != nil {
					return err
				}
				n, err := io.Copy(io.Discard, r)
				if err != nil {
					return err
				}
				fmt.Printf("%s: %d bytes\n", g.Key, n)
			}
		},
	}
	// WithChunkBytes lowers the threshold so this small example really
	// chunks; production runs usually keep the 4 MiB default.
	if _, err := datampi.Run(job, datampi.WithChunkBytes(4096)); err != nil {
		panic(err)
	}
	// Output:
	// clip-0001: 65536 bytes
}

// ExampleWithTransport configures the whole data plane in one option:
// transport kind plus the progress-engine knobs that used to be spread
// over WithMemTransport/WithTCPTransport/WithShmTransport/WithCoalesce/
// WithDrainTimeout.
func ExampleWithTransport() {
	job := &datampi.Job{
		Mode: datampi.MapReduce,
		NumO: 2,
		NumA: 1,
		OTask: func(c *datampi.Context) error {
			return c.Send("k", "v")
		},
		ATask: func(c *datampi.Context) error {
			for {
				if _, ok, err := c.NextGroup(); err != nil {
					return err
				} else if !ok {
					return nil
				}
			}
		},
	}
	_, err := datampi.Run(job, datampi.WithTransport(datampi.TransportConfig{
		Kind:             datampi.TransportTCP,
		CoalesceBytes:    32 << 10,
		CoalesceDeadline: 200 * time.Microsecond,
		ChunkBytes:       1 << 20,
	}))
	fmt.Println("err:", err)
	// Output:
	// err: <nil>
}

func splitWords(s string) []string {
	var out []string
	word := ""
	for _, r := range s {
		if r == ' ' {
			if word != "" {
				out = append(out, word)
			}
			word = ""
			continue
		}
		word += string(r)
	}
	if word != "" {
		out = append(out, word)
	}
	return out
}
