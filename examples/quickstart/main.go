// Quickstart: the paper's Listing 1 — a parallel sort in the Common mode.
//
// Each O task loads its share of the keys (here: generated in memory, as
// "users can load KVs from their preferred sources"), emits them with
// MPI_D_Send, and the library routes each key to an A task with a range
// partitioner. Each A task receives its keys already sorted and prints its
// range; the concatenation of the A tasks' outputs in rank order is the
// globally sorted sequence.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"sort"
	"sync"

	"datampi"
)

func main() {
	const (
		numO      = 4
		numA      = 3
		keysPerO  = 8
		keyLetter = 26
	)
	// A range partitioner makes the global output sorted across A ranks.
	rangePartition := func(key, _ []byte, numA int) int {
		return int(key[0]-'a') * numA / keyLetter
	}

	var mu sync.Mutex
	byTask := make([][]string, numA)

	job := &datampi.Job{
		Name: "sort",
		Mode: datampi.Common,
		Conf: datampi.Config{
			// KEY_CLASS / VALUE_CLASS of the paper's Listing 1.
			KeyCodec:   datampi.StringCodec,
			ValueCodec: datampi.NullCodec,
			Partition:  rangePartition,
		},
		NumO: numO,
		NumA: numA,
		OTask: func(ctx *datampi.Context) error {
			// "Users can load KVs from their preferred sources."
			rng := rand.New(rand.NewSource(int64(ctx.Rank())))
			for i := 0; i < keysPerO; i++ {
				key := fmt.Sprintf("%c%c%c",
					'a'+rng.Intn(keyLetter), 'a'+rng.Intn(keyLetter), 'a'+rng.Intn(keyLetter))
				// MPI_D_Send: no destination — the library routes it.
				if err := ctx.Send(key, struct{}{}); err != nil {
					return err
				}
			}
			return nil
		},
		ATask: func(ctx *datampi.Context) error {
			var keys []string
			for {
				// MPI_D_Recv: pairs arrive in key order.
				key, _, ok, err := ctx.Recv()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				keys = append(keys, key.(string))
			}
			mu.Lock()
			byTask[ctx.Rank()] = keys
			mu.Unlock()
			return nil
		},
	}

	res, err := datampi.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	var all []string
	for rank, keys := range byTask {
		fmt.Printf("A task %d received %d keys: %v\n", rank, len(keys), keys)
		all = append(all, keys...)
	}
	if !sort.StringsAreSorted(all) {
		log.Fatal("global order broken!")
	}
	fmt.Printf("globally sorted %d keys in %v (%d records shuffled)\n",
		len(all), res.Elapsed, res.RecordsSent)
}
