// K-means clustering in the Iteration mode: points stay resident in the O
// tasks; per-cluster partial sums flow O -> A (combined in-flight by
// MPI_D_Combine); the A tasks compute new centroids and broadcast them
// back to every O task through the reverse exchange.
//
//	go run ./examples/kmeans [points rounds]
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"
	"os"
	"strconv"
	"sync"

	"datampi"
)

const (
	k   = 5
	dim = 2
)

func main() {
	n, rounds := 5000, 7
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			n = v
		}
	}
	if len(os.Args) > 2 {
		if v, err := strconv.Atoi(os.Args[2]); err == nil {
			rounds = v
		}
	}
	// Points around k well-separated true centers.
	rng := rand.New(rand.NewSource(3))
	points := make([][]float64, n)
	for i := range points {
		c := i % k
		points[i] = []float64{
			float64(c*10) + rng.NormFloat64(),
			float64(c*-7) + rng.NormFloat64(),
		}
	}
	initial := make([][]float64, k)
	for c := range initial {
		initial[c] = append([]float64(nil), points[c]...)
	}
	nearest := func(p []float64, cents [][]float64) int {
		best, bd := 0, math.Inf(1)
		for c, cen := range cents {
			d := 0.0
			for j := range p {
				d += (p[j] - cen[j]) * (p[j] - cen[j])
			}
			if d < bd {
				best, bd = c, d
			}
		}
		return best
	}
	sumCombine := func(_ []byte, vals [][]byte) [][]byte {
		acc, err := datampi.Float64SliceCodec.Decode(vals[0])
		if err != nil {
			return vals
		}
		sum := acc.([]float64)
		for _, v := range vals[1:] {
			x, err := datampi.Float64SliceCodec.Decode(v)
			if err != nil {
				return vals
			}
			for j, f := range x.([]float64) {
				sum[j] += f
			}
		}
		out, _ := datampi.Float64SliceCodec.Encode(nil, sum)
		return [][]byte{out}
	}
	intPartition := func(key, _ []byte, numDest int) int {
		v, err := datampi.Int64Codec.Decode(key)
		if err != nil {
			return 0
		}
		return int(v.(int64) % int64(numDest))
	}

	var mu sync.Mutex
	finalCents := make([][]float64, k)
	maxMove := make([]float64, 1) // largest centroid movement this round

	const numO, numA = 4, 2
	job := &datampi.Job{
		Name: "kmeans",
		Mode: datampi.Iteration,
		Conf: datampi.Config{
			KeyCodec:   datampi.Int64Codec,
			ValueCodec: datampi.Float64SliceCodec,
			Partition:  intPartition,
			Combine:    sumCombine,
		},
		NumO: numO, NumA: numA, Procs: 2, Slots: 2,
		Rounds: rounds,
		// Convergence-driven early stop: finish when no centroid moved
		// more than eps since the previous round.
		KeepGoing: func(completed int) bool {
			mu.Lock()
			defer mu.Unlock()
			moved := maxMove[0]
			maxMove[0] = 0
			return moved > 1e-6
		},
		OTask: func(ctx *datampi.Context) error {
			cents, _ := ctx.Local.([][]float64)
			if cents == nil {
				cents = make([][]float64, k)
				for c := range cents {
					cents[c] = append([]float64(nil), initial[c]...)
				}
				ctx.Local = cents
			}
			if ctx.Round() > 0 {
				for { // updated centroids from last round (A -> O)
					_, v, ok, err := ctx.Recv()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					upd := v.([]float64) // [cid, coords...]
					if cid := int(upd[0]); cid >= 0 && cid < k {
						cents[cid] = upd[1:]
					}
				}
			}
			sums := make([][]float64, k) // [count, sum coords...]
			for i := ctx.Rank(); i < n; i += ctx.CommSize(datampi.CommO) {
				c := nearest(points[i], cents)
				if sums[c] == nil {
					sums[c] = make([]float64, 1+dim)
				}
				sums[c][0]++
				for j, f := range points[i] {
					sums[c][1+j] += f
				}
			}
			for c, s := range sums {
				if s != nil {
					if err := ctx.Send(int64(c), s); err != nil {
						return err
					}
				}
			}
			return nil
		},
		ATask: func(ctx *datampi.Context) error {
			for {
				g, ok, err := ctx.NextGroup()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				cidAny, err := datampi.Int64Codec.Decode(g.Key)
				if err != nil {
					return err
				}
				var total []float64
				for _, v := range g.Values {
					x, err := datampi.Float64SliceCodec.Decode(v)
					if err != nil {
						return err
					}
					s := x.([]float64)
					if total == nil {
						total = make([]float64, len(s))
					}
					for j, f := range s {
						total[j] += f
					}
				}
				if total == nil || total[0] == 0 {
					continue
				}
				upd := make([]float64, 1+dim)
				upd[0] = float64(cidAny.(int64))
				for j := 0; j < dim; j++ {
					upd[1+j] = total[1+j] / total[0]
				}
				mu.Lock()
				if prev := finalCents[int(upd[0])]; prev != nil {
					move := 0.0
					for j := range prev {
						d := prev[j] - upd[1+j]
						move += d * d
					}
					if move > maxMove[0] {
						maxMove[0] = move
					}
				} else {
					maxMove[0] = math.Inf(1) // first round: no baseline yet
				}
				finalCents[int(upd[0])] = append([]float64(nil), upd[1:]...)
				mu.Unlock()
				// Broadcast the new centroid to every O task.
				for o := 0; o < ctx.CommSize(datampi.CommO); o++ {
					if err := ctx.Send(int64(o), upd); err != nil {
						return err
					}
				}
			}
		},
	}
	res, err := datampi.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("%d points, converged after %d/%d rounds, per-round times %v\n",
		n, len(res.RoundTimes), rounds, res.RoundTimes)
	fmt.Println("final centroids (true centers near (10c, -7c)):")
	for c, cen := range finalCents {
		if cen == nil {
			cen = initial[c]
		}
		fmt.Printf("  cluster %d: (%.2f, %.2f)\n", c, cen[0], cen[1])
	}
}
