// Top-K in the Streaming mode: O tasks are adapters injecting a live
// stream of word events; A tasks run concurrently (launched before the
// stream starts), counting words as records arrive and maintaining the
// running top-K. Unlike the batch modes there is no phase barrier — Recv
// delivers records moments after Send, bounded by the FlushInterval.
//
//	go run ./examples/topk [events]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"
	"time"

	"datampi"
)

func main() {
	events := 5000
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			events = v
		}
	}
	const (
		numO = 2 // stream adapters
		numA = 2 // counting tasks
		topK = 8
	)
	var mu sync.Mutex
	counts := map[string]int{}
	var latencies []time.Duration

	job := &datampi.Job{
		Name: "topk",
		Mode: datampi.Streaming,
		Conf: datampi.Config{
			ValueCodec:    datampi.Int64Codec,
			FlushInterval: 5 * time.Millisecond,
			SPLBytes:      4 << 10,
		},
		NumO: numO, NumA: numA, Procs: 2, Slots: 2,
		OTask: func(ctx *datampi.Context) error {
			// An adapter: a skewed live word stream with embedded
			// timestamps so the consumer can measure latency.
			rng := rand.New(rand.NewSource(int64(ctx.Rank())))
			zipf := rand.NewZipf(rng, 1.4, 1.0, 99)
			for i := ctx.Rank(); i < events; i += numO {
				word := fmt.Sprintf("word%02d", zipf.Uint64())
				if err := ctx.Send(word, time.Now().UnixNano()); err != nil {
					return err
				}
			}
			return nil
		},
		ATask: func(ctx *datampi.Context) error {
			for {
				key, val, ok, err := ctx.Recv()
				if err != nil {
					return err
				}
				if !ok {
					return nil // stream closed: all adapters finished
				}
				lat := time.Duration(time.Now().UnixNano() - val.(int64))
				mu.Lock()
				counts[key.(string)]++
				latencies = append(latencies, lat)
				mu.Unlock()
			}
		},
	}
	res, err := datampi.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	type wc struct {
		w string
		c int
	}
	var all []wc
	for w, c := range counts {
		all = append(all, wc{w, c})
	}
	sort.Slice(all, func(i, j int) bool { return all[i].c > all[j].c })
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	fmt.Printf("streamed %d events in %v; p50 latency %v, p99 %v\n",
		res.RecordsSent, res.Elapsed,
		latencies[len(latencies)/2], latencies[len(latencies)*99/100])
	fmt.Printf("top-%d words:\n", topK)
	for i := 0; i < topK && i < len(all); i++ {
		fmt.Printf("  %-8s %d\n", all[i].w, all[i].c)
	}
}
