// TeraSort over the block-based distributed file system: the paper's
// headline benchmark end-to-end. TeraGen-style 100-byte records are
// written to a mini-HDFS; O tasks load their splits data-locally (the
// §IV-B utility, datampi.SplitsForTask), a range partitioner gives a
// globally sorted output, and A tasks — placed by the data-centric
// scheduler on the processes already holding their partitions — write the
// sorted parts back to the file system.
//
//	go run ./examples/terasort [records]
package main

import (
	"bytes"
	"fmt"
	"log"
	"math/rand"
	"os"
	"strconv"

	"datampi"
	"datampi/internal/diskio"
	"datampi/internal/hdfs"
	"datampi/internal/kv"
)

const (
	recordSize = 100
	keySize    = 10
	nodes      = 3
)

func main() {
	records := 50000
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			records = v
		}
	}
	// Build a 3-datanode mini-HDFS under a temp dir.
	base, err := os.MkdirTemp("", "terasort-")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(base)
	disks := make([]*diskio.Disk, nodes)
	for i := range disks {
		if disks[i], err = diskio.New(fmt.Sprintf("%s/node%d", base, i)); err != nil {
			log.Fatal(err)
		}
	}
	fs, err := hdfs.New(hdfs.Config{BlockSize: 256 << 10, Replication: 2}, disks)
	if err != nil {
		log.Fatal(err)
	}

	// TeraGen.
	w, err := fs.Create("/tera/in", -1)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2014))
	rec := make([]byte, recordSize)
	for i := 0; i < records; i++ {
		for j := 0; j < keySize; j++ {
			rec[j] = byte(' ' + rng.Intn(95))
		}
		copy(rec[keySize:], fmt.Sprintf("%090d", i))
		if _, err := w.Write(rec); err != nil {
			log.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		log.Fatal(err)
	}

	splits, err := fs.Splits("/tera/in")
	if err != nil {
		log.Fatal(err)
	}
	const numA = nodes * 2
	job := &datampi.Job{
		Name: "terasort",
		Mode: datampi.MapReduce,
		Conf: datampi.Config{
			KeyCodec:   datampi.BytesCodec,
			ValueCodec: datampi.BytesCodec,
			// Range partitioner: contiguous key ranges per A task.
			Partition: func(key, _ []byte, numA int) int {
				p := int(key[0]-' ') * numA / 95
				return max(0, min(p, numA-1))
			},
		},
		NumO: len(splits), NumA: numA, Procs: nodes, Slots: 2,
		Input: splits, // enables data-local O placement
		OTask: func(ctx *datampi.Context) error {
			for _, s := range datampi.SplitsForTask(ctx, splits) {
				err := fs.ReadRecordsInSplit(s, recordSize, ctx.Proc(), func(r []byte) error {
					return ctx.SendRecord(datampi.Record{Key: r[:keySize], Value: r[keySize:]})
				})
				if err != nil {
					return err
				}
			}
			return nil
		},
		ATask: func(ctx *datampi.Context) error {
			out, err := fs.Create(fmt.Sprintf("/tera/out/part-%05d", ctx.Rank()), ctx.Proc())
			if err != nil {
				return err
			}
			kw := kv.NewWriter(out)
			for {
				rec, ok, err := ctx.RecvRecord()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				if err := kw.Write(rec); err != nil {
					return err
				}
			}
			return out.Close()
		},
	}
	res, err := datampi.Run(job)
	if err != nil {
		log.Fatal(err)
	}

	// Validate the global sort.
	total := 0
	var prev []byte
	for _, part := range fs.List("/tera/out/") {
		data, err := fs.ReadAll(part, -1)
		if err != nil {
			log.Fatal(err)
		}
		r := kv.NewReader(bytes.NewReader(data))
		for {
			rec, err := r.Read()
			if err != nil {
				break
			}
			if prev != nil && bytes.Compare(prev, rec.Key) > 0 {
				log.Fatalf("output not globally sorted at record %d", total)
			}
			prev = rec.Key
			total++
		}
	}
	fmt.Printf("sorted %d records in %v; %d/%d A tasks ran data-local; %d O tasks ran split-local\n",
		total, res.Elapsed, res.LocalATasks, numA, res.LocalOTasks)
}
