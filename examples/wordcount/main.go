// WordCount in the MapReduce mode, with an MPI_D_Combine combiner: the
// canonical MPMD bipartite job. O tasks tokenize documents and emit
// (word, 1); the library combines, sorts and routes; A tasks fold each
// word's group into a count.
//
//	go run ./examples/wordcount
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"datampi"
)

var documents = []string{
	"the quick brown fox jumps over the lazy dog",
	"the dog barks and the fox runs",
	"a quick brown dog and a lazy fox",
	"the fox and the dog are friends",
}

func main() {
	sumCombine := func(_ []byte, vals [][]byte) [][]byte {
		var sum int64
		for _, v := range vals {
			n, err := datampi.Int64Codec.Decode(v)
			if err != nil {
				return vals
			}
			sum += n.(int64)
		}
		out, _ := datampi.Int64Codec.Encode(nil, sum)
		return [][]byte{out}
	}

	var mu sync.Mutex
	counts := map[string]int64{}

	job := &datampi.Job{
		Name: "wordcount",
		Mode: datampi.MapReduce,
		Conf: datampi.Config{
			ValueCodec: datampi.Int64Codec,
			Combine:    sumCombine, // MPI_D_COMBINE
		},
		NumO: len(documents),
		NumA: 2,
		OTask: func(ctx *datampi.Context) error {
			for _, word := range strings.Fields(documents[ctx.Rank()]) {
				if err := ctx.Send(word, int64(1)); err != nil {
					return err
				}
			}
			return nil
		},
		ATask: func(ctx *datampi.Context) error {
			for {
				g, ok, err := ctx.NextGroup()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				var sum int64
				for _, v := range g.Values {
					n, err := datampi.Int64Codec.Decode(v)
					if err != nil {
						return err
					}
					sum += n.(int64)
				}
				mu.Lock()
				counts[string(g.Key)] = sum
				mu.Unlock()
			}
		},
	}
	res, err := datampi.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	words := make([]string, 0, len(counts))
	for w := range counts {
		words = append(words, w)
	}
	sort.Slice(words, func(i, j int) bool {
		if counts[words[i]] != counts[words[j]] {
			return counts[words[i]] > counts[words[j]]
		}
		return words[i] < words[j]
	})
	for _, w := range words {
		fmt.Printf("%-8s %d\n", w, counts[w])
	}
	fmt.Printf("counted %d distinct words; combiner shrank the shuffle to %d bytes\n",
		len(counts), res.BytesShuffled)
}
