// PageRank in the Iteration mode: the bi-directional bipartite exchange.
// The graph stays resident in the O tasks across rounds (Twister-style);
// each round, rank contributions flow O -> A, and the aggregated new ranks
// flow back A -> O as the reverse exchange, so nothing is re-read from
// storage between iterations.
//
//	go run ./examples/pagerank [pages rounds]
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"sync"

	"datampi"
)

const damping = 0.85

func main() {
	pages, rounds := 2000, 7
	if len(os.Args) > 1 {
		if v, err := strconv.Atoi(os.Args[1]); err == nil {
			pages = v
		}
	}
	if len(os.Args) > 2 {
		if v, err := strconv.Atoi(os.Args[2]); err == nil {
			rounds = v
		}
	}
	// A skewed random web graph.
	rng := rand.New(rand.NewSource(7))
	out := make([][]int32, pages)
	for p := range out {
		deg := 1 + rng.Intn(8)
		for d := 0; d < deg; d++ {
			t := int32(rng.Intn(pages))
			if int(t) != p {
				out[p] = append(out[p], t)
			}
		}
	}
	base := (1 - damping) / float64(pages)
	ranks := make([]float64, pages)
	for i := range ranks {
		ranks[i] = base
	}
	var mu sync.Mutex

	// Keys are page ids; partition by id so both directions of the
	// exchange are addressable.
	intPartition := func(key, _ []byte, numDest int) int {
		v, err := datampi.Int64Codec.Decode(key)
		if err != nil {
			return 0
		}
		return int(v.(int64) % int64(numDest))
	}

	const numO, numA = 4, 2
	job := &datampi.Job{
		Name: "pagerank",
		Mode: datampi.Iteration,
		Conf: datampi.Config{
			KeyCodec:   datampi.Int64Codec,
			ValueCodec: datampi.Float64Codec,
			Partition:  intPartition,
		},
		NumO: numO, NumA: numA, Procs: 2, Slots: 2,
		Rounds: rounds,
		OTask: func(ctx *datampi.Context) error {
			// Per-task resident rank table survives across rounds in
			// ctx.Local.
			local, _ := ctx.Local.(map[int32]float64)
			if local == nil {
				local = map[int32]float64{}
				for p := ctx.Rank(); p < pages; p += ctx.CommSize(datampi.CommO) {
					local[int32(p)] = 1.0 / float64(pages)
				}
				ctx.Local = local
			}
			if ctx.Round() > 0 {
				for p := range local {
					local[p] = base
				}
				for { // receive last round's feedback (A -> O)
					k, v, ok, err := ctx.Recv()
					if err != nil {
						return err
					}
					if !ok {
						break
					}
					local[int32(k.(int64))] = v.(float64)
				}
			}
			for p, r := range local { // send contributions (O -> A)
				if len(out[p]) == 0 {
					continue
				}
				share := r / float64(len(out[p]))
				for _, t := range out[p] {
					if err := ctx.Send(int64(t), share); err != nil {
						return err
					}
				}
			}
			return nil
		},
		ATask: func(ctx *datampi.Context) error {
			sums := map[int64]float64{}
			for {
				k, v, ok, err := ctx.Recv()
				if err != nil {
					return err
				}
				if !ok {
					break
				}
				sums[k.(int64)] += v.(float64)
			}
			mu.Lock()
			for page, s := range sums {
				ranks[page] = base + damping*s
			}
			mu.Unlock()
			for page, s := range sums { // feedback (A -> O)
				if err := ctx.Send(page, base+damping*s); err != nil {
					return err
				}
			}
			return nil
		},
	}
	res, err := datampi.Run(job)
	if err != nil {
		log.Fatal(err)
	}
	type pr struct {
		page int
		rank float64
	}
	top := make([]pr, pages)
	var mass float64
	for p, r := range ranks {
		top[p] = pr{p, r}
		mass += r
	}
	sort.Slice(top, func(i, j int) bool { return top[i].rank > top[j].rank })
	fmt.Printf("%d pages, %d rounds, per-round times %v (rank mass %.4f)\n",
		pages, rounds, res.RoundTimes, mass)
	for i := 0; i < 5 && i < len(top); i++ {
		fmt.Printf("  #%d page %5d  rank %.6f\n", i+1, top[i].page, top[i].rank)
	}
}
