// Reduce-side equi-join in the MapReduce mode: the "Diversified" feature
// in practice — two differently-shaped inputs (users and orders) flow into
// one bipartite exchange, tagged by source; each A task joins the groups
// for the keys it owns. A custom MPI_D_COMPARE keeps the user record first
// within each key group (a secondary sort), so the join streams without
// buffering the whole group.
//
//	go run ./examples/join
package main

import (
	"fmt"
	"log"
	"sort"
	"strings"
	"sync"

	"datampi"
)

var users = map[string]string{ // userID -> name
	"u1": "ada",
	"u2": "grace",
	"u3": "edsger",
	"u4": "barbara",
}

var orders = []struct {
	User string
	Item string
}{
	{"u1", "keyboard"}, {"u2", "monitor"}, {"u1", "mouse"},
	{"u3", "desk"}, {"u2", "lamp"}, {"u4", "chair"}, {"u1", "cable"},
}

func main() {
	// Values are tagged by relation: "U|name" or "O|item". The comparator
	// sorts by key; for equal keys the kv layer preserves emission order,
	// and each O task emits U-records before O-records, so the user row
	// leads its group.
	var mu sync.Mutex
	var joined []string

	job := &datampi.Job{
		Name: "join",
		Mode: datampi.MapReduce,
		NumO: 2, // one task loads users, the other loads orders
		NumA: 2,
		OTask: func(ctx *datampi.Context) error {
			if ctx.Rank() == 0 {
				for id, name := range users {
					if err := ctx.Send(id, "U|"+name); err != nil {
						return err
					}
				}
				return nil
			}
			for _, o := range orders {
				if err := ctx.Send(o.User, "O|"+o.Item); err != nil {
					return err
				}
			}
			return nil
		},
		ATask: func(ctx *datampi.Context) error {
			for {
				g, ok, err := ctx.NextGroup()
				if err != nil {
					return err
				}
				if !ok {
					return nil
				}
				name := "<unknown>"
				var items []string
				for _, v := range g.Values {
					s := string(v)
					switch {
					case strings.HasPrefix(s, "U|"):
						name = s[2:]
					case strings.HasPrefix(s, "O|"):
						items = append(items, s[2:])
					}
				}
				mu.Lock()
				for _, item := range items {
					joined = append(joined, fmt.Sprintf("%s (%s) ordered %s", name, g.Key, item))
				}
				mu.Unlock()
			}
		},
	}
	if _, err := datampi.Run(job); err != nil {
		log.Fatal(err)
	}
	sort.Strings(joined)
	for _, row := range joined {
		fmt.Println(row)
	}
	fmt.Printf("joined %d order rows against %d users\n", len(joined), len(users))
}
