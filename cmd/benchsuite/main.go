// Command benchsuite regenerates every table and figure of the paper's
// evaluation section (§V): Fig. 1(a)/(b) communication primitives,
// Fig. 8(a)/(b) parameter tuning, Fig. 9 progress, Fig. 10(a)-(c) workload
// comparisons, Fig. 11 resource profiles, Fig. 12 spill-over, Fig. 13
// fault tolerance, Fig. 14 scalability, plus design ablations.
//
// Usage:
//
//	benchsuite [-exp all|fig1a|fig1b|fig8a|fig8b|fig9|fig10a|fig10b|fig10c|
//	            wordcount|fig11|fig12|fig13a|fig13b|fig14a|fig14b|ablations]
//	           [-quick]
//
// The regression harness runs the shuffle micro-benchmarks instead of the
// figure experiments and snapshots ns/op plus the runtime shuffle counters:
//
//	benchsuite -regress [-quick] [-bench-out BENCH_shuffle.json]
//	           [-against BENCH_shuffle.json] [-trace out.json]
//	           [-prepare-workers N] [-merge-workers N]
//	           [-coalesce-off] [-mux-off] [-shm-off] [-chunk-bytes N]
//
// The streaming regression runs the resident-service comparison instead
// (DataMPI StreamJob vs the internal S4 baseline, same paced windowed
// aggregation) and snapshots sustained events/sec plus p50/p99/p999
// latency for each system:
//
//	benchsuite -stream-regress [-stream-rate N] [-quick]
//	           [-bench-out BENCH_stream.json] [-against BENCH_stream.json]
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"strings"

	"datampi/internal/bench"
	"datampi/internal/trace"
)

func main() {
	exp := flag.String("exp", "all", "experiment id, comma list, or 'all'")
	quick := flag.Bool("quick", false, "use small test-scale inputs")
	outPath := flag.String("o", "", "also write the output to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	regress := flag.Bool("regress", false, "run the benchmark-regression harness instead of the experiments")
	benchOut := flag.String("bench-out", "", "write the regression snapshot JSON to this path")
	against := flag.String("against", "", "compare the regression run against this baseline snapshot (informational)")
	tracePath := flag.String("trace", "", "with -regress: write a Chrome trace_event JSON of one traced run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	prepWorkers := flag.Int("prepare-workers", 0, "with -regress: shuffle prepare-pool width (0 = GOMAXPROCS)")
	mergeWorkers := flag.Int("merge-workers", 0, "with -regress: A-side merge-pool width (0 = GOMAXPROCS)")
	coalesceOff := flag.Bool("coalesce-off", false, "with -regress: disable transport send coalescing (flush per frame)")
	muxOff := flag.Bool("mux-off", false, "with -regress: disable connection multiplexing (one conn per comm/rank/dest)")
	shmOff := flag.Bool("shm-off", false, "with -regress: disable the shared-memory ring transport (shuffle/shm entries fall back to TCP)")
	chunkBytes := flag.Int("chunk-bytes", 0, "with -regress: large-value chunk threshold for the shuffle-skew entry (0 = entry default)")
	streamRegress := flag.Bool("stream-regress", false, "run the streaming-regression harness (DataMPI vs S4 windowed aggregation) instead of the experiments")
	streamRate := flag.Int("stream-rate", 10000, "with -stream-regress: offered event rate per second (default 10x the paper's Fig. 10(c) 1K events/sec)")
	flag.Parse()

	if *streamRegress {
		runStreamRegress(*streamRate, *quick, *benchOut, *against)
		return
	}

	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "benchsuite: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "benchsuite: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}

	o := bench.Default()
	if *quick {
		o = bench.Quick()
	}
	if *regress {
		o.PrepareWorkers = *prepWorkers
		o.MergeWorkers = *mergeWorkers
		o.CoalesceOff = *coalesceOff
		o.MuxOff = *muxOff
		o.ShmOff = *shmOff
		o.ChunkBytes = *chunkBytes
		runRegress(o, *quick, *benchOut, *against, *tracePath)
		return
	}
	cpDir := func() string {
		d, err := os.MkdirTemp("", "datampi-cp-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return d
	}
	type driver struct {
		id  string
		run func() (*bench.Table, error)
	}
	drivers := []driver{
		{"fig1a", bench.Fig1a},
		{"fig1b", bench.Fig1b},
		{"fig8a", func() (*bench.Table, error) { return bench.Fig8a(o) }},
		{"fig8b", func() (*bench.Table, error) { return bench.Fig8b(o) }},
		{"fig9", func() (*bench.Table, error) { return bench.Fig9(o) }},
		{"fig10a", func() (*bench.Table, error) { return bench.Fig10a(o) }},
		{"wordcount", func() (*bench.Table, error) { return bench.WordCountExp(o) }},
		{"fig10b", func() (*bench.Table, error) { return bench.Fig10b(o) }},
		{"fig10c", func() (*bench.Table, error) { return bench.Fig10c(o) }},
		{"fig11", func() (*bench.Table, error) { return bench.Fig11(o) }},
		{"fig12", func() (*bench.Table, error) { return bench.Fig12(o) }},
		{"fig13a", func() (*bench.Table, error) { return bench.Fig13a(o, cpDir) }},
		{"fig13b", func() (*bench.Table, error) { return bench.Fig13b(o, cpDir) }},
		{"fig14a", bench.Fig14a},
		{"fig14b", bench.Fig14b},
		{"ablations", bench.Ablations},
	}
	if *list {
		for _, d := range drivers {
			fmt.Println(d.id)
		}
		return
	}
	var sink *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	want := strings.Split(*exp, ",")
	match := func(id string) bool {
		for _, w := range want {
			if w == "all" || w == id {
				return true
			}
		}
		return false
	}
	ran := 0
	for _, d := range drivers {
		if !match(d.id) {
			continue
		}
		t, err := d.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		if sink != nil {
			fmt.Fprintln(sink, t.Render())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}

// runRegress drives the regression harness: run, print, optionally snapshot
// and compare. A baseline mismatch is reported but never fails the run —
// CI keeps perf deltas non-blocking.
func runRegress(o bench.Opts, quick bool, benchOut, against, tracePath string) {
	var tr *trace.Tracer
	if tracePath != "" {
		tr = trace.New()
	}
	rep, err := bench.Regress(o, quick, tr)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	for _, e := range rep.Entries {
		fmt.Printf("%-16s %10d ns/op  %10d B/op  %8d allocs/op  (%d iterations)\n",
			e.Name, e.NsPerOp, e.BytesPerOp, e.AllocsPerOp, e.Iterations)
		if e.Counters != nil {
			fmt.Printf("%-16s shuffle %d records / %d bytes, combine %d->%d\n", "",
				e.Counters["shuffle.records.sent"], e.Counters["shuffle.bytes.sent"],
				e.Counters["combine.records.in"], e.Counters["combine.records.out"])
			if bp, ok := e.Counters["cp.overhead.bp"]; ok {
				fmt.Printf("%-16s checkpoint overhead %+.2f%% vs checkpoint/off\n", "", float64(bp)/100)
			}
			if ns, ok := e.Counters["recovery.ns.per.lost.record"]; ok {
				fmt.Printf("%-16s recovery: %d records reloaded, %d lost, %d ns per lost record\n", "",
					e.Counters["recovery.reloaded.records"], e.Counters["recovery.lost.records"], ns)
			}
		}
	}
	if against != "" {
		base, err := bench.ReadRegress(against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		fmt.Printf("\nvs baseline %s (%s, quick=%v):\n", against, base.Date, base.Quick)
		for _, line := range bench.CompareRegress(base, rep) {
			fmt.Println(" ", line)
		}
	}
	if benchOut != "" {
		if err := bench.WriteRegress(rep, benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsuite: snapshot written to %s\n", benchOut)
	}
	if tr != nil {
		if err := tr.WriteFile(tracePath); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsuite: trace written to %s\n", tracePath)
	}
}

// runStreamRegress drives the streaming harness: both systems run the
// same paced windowed aggregation, and the snapshot records sustained
// events/sec plus the latency CDF tail of each. Like runRegress, a
// baseline mismatch is reported but never fails the run.
func runStreamRegress(rate int, quick bool, benchOut, against string) {
	rep, err := bench.StreamRegress(rate, quick)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	for _, e := range rep.Entries {
		c := e.Counters
		fmt.Printf("%-16s %8d events/sec sustained  p50 %8.2fms  p99 %8.2fms  p999 %8.2fms\n",
			e.Name, c["stream.rate.events.per.sec"],
			float64(c["stream.lat.p50.ns"])/1e6,
			float64(c["stream.lat.p99.ns"])/1e6,
			float64(c["stream.lat.p999.ns"])/1e6)
		if fired, ok := c["stream.windows.fired"]; ok {
			fmt.Printf("%-16s windows fired %d, events in %d, credits granted %d, credit stalls %d\n", "",
				fired, c["stream.events.in"], c["stream.credits.granted"], c["stream.credits.stalls"])
		}
	}
	if against != "" {
		base, err := bench.ReadRegress(against)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		fmt.Printf("\nvs baseline %s (%s, quick=%v):\n", against, base.Date, base.Quick)
		for _, line := range bench.CompareRegress(base, rep) {
			fmt.Println(" ", line)
		}
	}
	if benchOut != "" {
		if err := bench.WriteRegress(rep, benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "benchsuite: snapshot written to %s\n", benchOut)
	}
}
