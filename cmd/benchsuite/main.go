// Command benchsuite regenerates every table and figure of the paper's
// evaluation section (§V): Fig. 1(a)/(b) communication primitives,
// Fig. 8(a)/(b) parameter tuning, Fig. 9 progress, Fig. 10(a)-(c) workload
// comparisons, Fig. 11 resource profiles, Fig. 12 spill-over, Fig. 13
// fault tolerance, Fig. 14 scalability, plus design ablations.
//
// Usage:
//
//	benchsuite [-exp all|fig1a|fig1b|fig8a|fig8b|fig9|fig10a|fig10b|fig10c|
//	            wordcount|fig11|fig12|fig13a|fig13b|fig14a|fig14b|ablations]
//	           [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"datampi/internal/bench"
)

func main() {
	exp := flag.String("exp", "all", "experiment id, comma list, or 'all'")
	quick := flag.Bool("quick", false, "use small test-scale inputs")
	outPath := flag.String("o", "", "also write the output to this file")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	o := bench.Default()
	if *quick {
		o = bench.Quick()
	}
	cpDir := func() string {
		d, err := os.MkdirTemp("", "datampi-cp-")
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return d
	}
	type driver struct {
		id  string
		run func() (*bench.Table, error)
	}
	drivers := []driver{
		{"fig1a", bench.Fig1a},
		{"fig1b", bench.Fig1b},
		{"fig8a", func() (*bench.Table, error) { return bench.Fig8a(o) }},
		{"fig8b", func() (*bench.Table, error) { return bench.Fig8b(o) }},
		{"fig9", func() (*bench.Table, error) { return bench.Fig9(o) }},
		{"fig10a", func() (*bench.Table, error) { return bench.Fig10a(o) }},
		{"wordcount", func() (*bench.Table, error) { return bench.WordCountExp(o) }},
		{"fig10b", func() (*bench.Table, error) { return bench.Fig10b(o) }},
		{"fig10c", func() (*bench.Table, error) { return bench.Fig10c(o) }},
		{"fig11", func() (*bench.Table, error) { return bench.Fig11(o) }},
		{"fig12", func() (*bench.Table, error) { return bench.Fig12(o) }},
		{"fig13a", func() (*bench.Table, error) { return bench.Fig13a(o, cpDir) }},
		{"fig13b", func() (*bench.Table, error) { return bench.Fig13b(o, cpDir) }},
		{"fig14a", bench.Fig14a},
		{"fig14b", bench.Fig14b},
		{"ablations", bench.Ablations},
	}
	if *list {
		for _, d := range drivers {
			fmt.Println(d.id)
		}
		return
	}
	var sink *os.File
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer f.Close()
		sink = f
	}
	want := strings.Split(*exp, ",")
	match := func(id string) bool {
		for _, w := range want {
			if w == "all" || w == id {
				return true
			}
		}
		return false
	}
	ran := 0
	for _, d := range drivers {
		if !match(d.id) {
			continue
		}
		t, err := d.run()
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", d.id, err)
			os.Exit(1)
		}
		fmt.Println(t.Render())
		if sink != nil {
			fmt.Fprintln(sink, t.Render())
		}
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *exp)
		os.Exit(2)
	}
}
