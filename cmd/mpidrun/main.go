// Command mpidrun is the paper's job launcher (§IV-B):
//
//	mpidrun -f hostfile -O n -A m -M mode -jar jarname classname params
//
// Task code must be resident in the worker processes (the paper loads it
// from the application jar), so this launcher ships with the benchmark
// applications built in and generates their inputs:
//
//	mpidrun -O 8 -A 4 -M MapReduce terasort  [records]
//	mpidrun -O 8 -A 4 -M MapReduce wordcount [lines]
//	mpidrun -O 8 -A 4 -M Iteration pagerank  [pages rounds]
//	mpidrun -O 8 -A 4 -M Iteration kmeans    [points rounds]
//	mpidrun -O 4 -A 2 -M Streaming topk      [events]
//
// -n sets the number of worker processes (the hostfile analogue).
//
// Observability:
//
//	-trace out.json   write a Chrome trace_event file of the run (open in
//	                  chrome://tracing or https://ui.perfetto.dev)
//	-counters         print the runtime shuffle/spill/checkpoint counters
//	-pprof addr       serve net/http/pprof on addr for the run's duration
//
// -launch selects how workers are hosted: "goroutine" (default) runs
// every worker inside this process; "proc" spawns -n real worker OS
// processes (re-executions of this binary) that rendezvous over TCP and
// run the job cross-process (§IV-B). Process launch supports terasort and
// wordcount; with -ft, a worker process dying mid-run is relaunched and
// the job completes from its checkpoints; adding -partial-restart
// respawns only the dead rank and replays its committed chunks instead
// of relaunching the whole fleet. Same-host rank pairs ride shared-memory
// rings by default; -shm-off keeps every pair on TCP.
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"

	"datampi/internal/bench"
	"datampi/internal/core"
	"datampi/internal/launch"
	"datampi/internal/trace"
)

func main() {
	// Spawned worker copies of this binary must enter the worker loop
	// before flag parsing: their command line is the launcher's, not ours.
	if launch.IsSpawnedWorker() {
		if err := launch.RunSpawnedWorker(); err != nil {
			fmt.Fprintln(os.Stderr, "mpidrun worker:", err)
			os.Exit(1)
		}
		return
	}
	numO := flag.Int("O", 4, "number of tasks in COMM_BIPARTITE_O")
	numA := flag.Int("A", 2, "number of tasks in COMM_BIPARTITE_A")
	mode := flag.String("M", "MapReduce", "mode: Common|MapReduce|Iteration|Streaming")
	procs := flag.Int("n", 2, "worker processes to spawn")
	launchMode := flag.String("launch", "goroutine", "worker hosting: goroutine (in-process) | proc (spawn real worker processes)")
	ft := flag.Bool("ft", false, "enable the key-value library-level checkpoint (fault tolerance)")
	partial := flag.Bool("partial-restart", false, "with -launch=proc -ft: recover a dead worker by respawning only that rank instead of relaunching the fleet")
	shmOff := flag.Bool("shm-off", false, "with -launch=proc: disable the same-host shared-memory transport (all rank pairs use TCP)")
	hostfile := flag.String("f", "", "hostfile: one host per line (localhost only), overrides -n")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the run to this path")
	counters := flag.Bool("counters", false, "print the runtime counters after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if *hostfile != "" {
		data, err := os.ReadFile(*hostfile)
		if err != nil {
			fatal(err)
		}
		hosts, err := launch.ParseHostfile(string(data))
		if err != nil {
			fatal(err)
		}
		n, err := launch.CheckLocalHosts(hosts)
		if err != nil {
			fatal(err)
		}
		if n > 0 {
			*procs = n
		}
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mpidrun -O n -A m -M mode <terasort|wordcount|pagerank|kmeans|topk> [params]")
		os.Exit(2)
	}
	switch *launchMode {
	case "goroutine":
	case "proc":
		runProc(*numO, *numA, *mode, *procs, *ft, *partial, *shmOff, *tracePath, *counters, flag.Args())
		return
	default:
		fmt.Fprintf(os.Stderr, "mpidrun: unknown -launch mode %q (want goroutine or proc)\n", *launchMode)
		os.Exit(2)
	}
	if *partial {
		fmt.Fprintln(os.Stderr, "mpidrun: -partial-restart requires -launch=proc")
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mpidrun: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "mpidrun: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}
	app := flag.Arg(0)
	arg := func(i, def int) int {
		if flag.NArg() > i {
			if v, err := strconv.Atoi(flag.Arg(i)); err == nil {
				return v
			}
		}
		return def
	}
	env, err := bench.NewEnv(bench.EnvConfig{Nodes: *procs, BlockSize: 256 << 10})
	if err != nil {
		fatal(err)
	}
	defer env.Close()

	inst := bench.Instr{}
	if *tracePath != "" {
		inst.Trace = trace.New()
	}
	var res *core.Result

	switch app {
	case "terasort":
		records := arg(1, 100000)
		if err := bench.TeraGen(env.FS, "/in", records, 1); err != nil {
			fatal(err)
		}
		opts := bench.TeraSortOpts{NumO: *numO, NumA: *numA, Procs: *procs}
		if *ft {
			dir, err := os.MkdirTemp("", "mpidrun-cp-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
			opts.FaultTolerance = true
			opts.CheckpointDir = dir
			opts.CheckpointRecords = int64(records / 50)
		}
		res, err = bench.DataMPITeraSort(env, "/in", opts, inst)
		if err != nil {
			fatal(err)
		}
		if err := bench.VerifyTeraSort(env.FS, "/in.sorted", records); err != nil {
			fatal(err)
		}
		fmt.Printf("terasort (%s mode, ft=%v): %d records sorted in %v (%d local A tasks, %d remote)\n",
			*mode, *ft, records, res.Elapsed, res.LocalATasks, res.RemoteATasks)
	case "wordcount":
		lines := arg(1, 20000)
		if err := bench.TextGen(env.FS, "/in", lines, 10, 5000, 1); err != nil {
			fatal(err)
		}
		res, err = bench.DataMPIWordCount(env, "/in", *numO, *numA, inst)
		if err != nil {
			fatal(err)
		}
		counts, err := bench.ReadCounts(env.FS, "/in.counts")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wordcount: %d lines, %d distinct words in %v\n", lines, len(counts), res.Elapsed)
	case "pagerank":
		pages, rounds := arg(1, 5000), arg(2, 7)
		g := bench.GenGraph(pages, 8, 1)
		var ranks []float64
		res, ranks, err = bench.DataMPIPageRank(env, g, *numO, *numA, rounds, inst)
		if err != nil {
			fatal(err)
		}
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		fmt.Printf("pagerank: %d pages, %d rounds %v (rank mass %.3f)\n", pages, rounds, res.RoundTimes, sum)
	case "kmeans":
		points, rounds := arg(1, 10000), arg(2, 7)
		pts := bench.GenPoints(points, 8, *numA*2, 1)
		var cents [][]float64
		res, cents, err = bench.DataMPIKMeans(env, pts, *numA*2, *numO, rounds, inst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("kmeans: %d points, %d centroids, %d rounds %v\n", points, len(cents), rounds, res.RoundTimes)
	case "topk":
		events := arg(1, 5000)
		var lat bench.LatencyCollector
		var top map[string]uint64
		top, res, err = bench.DataMPITopK(env, bench.EventGen(events, 200, 100, 1), 5000, *numO, 10, &lat, inst)
		if err != nil {
			fatal(err)
		}
		l := lat.Latencies()
		fmt.Printf("topk: %d events, p50 latency %v, top-10: %v\n",
			events, bench.Percentile(l, 50), top)
	default:
		fmt.Fprintf(os.Stderr, "mpidrun: unknown application %q\n", app)
		os.Exit(2)
	}

	if *counters && res != nil {
		printCounters(res)
	}
	if inst.Trace != nil {
		if err := inst.Trace.WriteFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mpidrun: trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
}

// runProc is the -launch=proc path: build a self-contained job spec from
// the flags, spawn the worker fleet, and run the job across it.
func runProc(numO, numA int, mode string, procs int, ft, partial, shmOff bool, tracePath string, counters bool, args []string) {
	if mode != "MapReduce" {
		fatal(fmt.Errorf("-launch=proc supports MapReduce mode only (got -M %s)", mode))
	}
	if partial && !ft {
		fatal(fmt.Errorf("-partial-restart requires -ft (recovery replays committed checkpoints)"))
	}
	app := args[0]
	argN := func(i, def int) int {
		if len(args) > i {
			if v, err := strconv.Atoi(args[i]); err == nil {
				return v
			}
		}
		return def
	}
	outDir, err := os.MkdirTemp("", "mpidrun-out-")
	if err != nil {
		fatal(err)
	}
	defer os.RemoveAll(outDir)
	spec := &launch.JobSpec{
		App: app, NumO: numO, NumA: numA, Procs: procs,
		Seed: 1, OutDir: outDir, ShmOff: shmOff,
	}
	var records int
	switch app {
	case "wordcount":
		lines := argN(1, 20000)
		spec.Lines = (lines + numO - 1) / numO // spec lines are per O task
	case "terasort":
		records = argN(1, 100000)
		spec.Records = records
	}
	if ft {
		cpDir, err := os.MkdirTemp("", "mpidrun-cp-")
		if err != nil {
			fatal(err)
		}
		defer os.RemoveAll(cpDir)
		spec.FT = true
		spec.PartialRestart = partial
		spec.CheckpointDir = cpDir
		if records > 0 {
			spec.CheckpointRecords = int64(records / 50)
		}
	}
	opt := launch.Options{Output: os.Stderr}
	if tracePath != "" {
		opt.Trace = trace.New()
	}
	res, err := launch.Launch(spec, opt)
	if err != nil {
		fatal(err)
	}
	switch app {
	case "wordcount":
		distinct, total, err := summarizeWordCount(outDir, numA)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wordcount (proc launch, %d workers, ft=%v): %d words, %d distinct in %v\n",
			procs, ft, total, distinct, res.Elapsed)
	case "terasort":
		n, err := verifySortedParts(outDir, numA)
		if err != nil {
			fatal(err)
		}
		if n != spec.Records {
			fatal(fmt.Errorf("terasort produced %d records, want %d", n, spec.Records))
		}
		fmt.Printf("terasort (proc launch, %d workers, ft=%v): %d records sorted in %v\n",
			procs, ft, n, res.Elapsed)
	}
	if counters {
		printCounters(res)
	}
	if opt.Trace != nil {
		if err := opt.Trace.WriteFile(tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mpidrun: merged cross-process trace written to %s\n", tracePath)
	}
}

// summarizeWordCount folds the A tasks' part files into (distinct, total).
func summarizeWordCount(dir string, numA int) (int, int64, error) {
	distinct := 0
	var total int64
	for a := 0; a < numA; a++ {
		data, err := os.ReadFile(launch.PartPath(dir, a))
		if err != nil {
			return 0, 0, err
		}
		for _, line := range splitLines(data) {
			var word string
			var n int64
			if _, err := fmt.Sscanf(line, "%s\t%d", &word, &n); err != nil {
				return 0, 0, fmt.Errorf("bad wordcount output line %q", line)
			}
			distinct++
			total += n
		}
	}
	return distinct, total, nil
}

// verifySortedParts checks the terasort output is one global key order
// across the concatenated part files and returns the record count.
func verifySortedParts(dir string, numA int) (int, error) {
	var prev string
	n := 0
	for a := 0; a < numA; a++ {
		data, err := os.ReadFile(launch.PartPath(dir, a))
		if err != nil {
			return 0, err
		}
		for _, line := range splitLines(data) {
			key, _, _ := strings.Cut(line, "\t")
			if key < prev {
				return 0, fmt.Errorf("terasort output out of order in part %d: %q after %q", a, key, prev)
			}
			prev = key
			n++
		}
	}
	return n, nil
}

func splitLines(data []byte) []string {
	var out []string
	for _, l := range strings.Split(string(data), "\n") {
		if l != "" {
			out = append(out, l)
		}
	}
	return out
}

// printCounters renders the runtime counters (and any user counters) as a
// sorted human-readable table.
func printCounters(res *core.Result) {
	section := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		fmt.Printf("%s:\n", title)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-40s %12d\n", k, m[k])
		}
	}
	section("runtime counters", res.RuntimeCounters)
	section("user counters", res.Counters)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpidrun:", err)
	os.Exit(1)
}
