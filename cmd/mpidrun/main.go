// Command mpidrun is the paper's job launcher (§IV-B):
//
//	mpidrun -f hostfile -O n -A m -M mode -jar jarname classname params
//
// Task code must be resident in the worker processes (the paper loads it
// from the application jar), so this launcher ships with the benchmark
// applications built in and generates their inputs:
//
//	mpidrun -O 8 -A 4 -M MapReduce terasort  [records]
//	mpidrun -O 8 -A 4 -M MapReduce wordcount [lines]
//	mpidrun -O 8 -A 4 -M Iteration pagerank  [pages rounds]
//	mpidrun -O 8 -A 4 -M Iteration kmeans    [points rounds]
//	mpidrun -O 4 -A 2 -M Streaming topk      [events]
//
// -n sets the number of worker processes (the hostfile analogue).
//
// Observability:
//
//	-trace out.json   write a Chrome trace_event file of the run (open in
//	                  chrome://tracing or https://ui.perfetto.dev)
//	-counters         print the runtime shuffle/spill/checkpoint counters
//	-pprof addr       serve net/http/pprof on addr for the run's duration
package main

import (
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"sort"
	"strconv"
	"strings"

	"datampi/internal/bench"
	"datampi/internal/core"
	"datampi/internal/trace"
)

func main() {
	numO := flag.Int("O", 4, "number of tasks in COMM_BIPARTITE_O")
	numA := flag.Int("A", 2, "number of tasks in COMM_BIPARTITE_A")
	mode := flag.String("M", "MapReduce", "mode: Common|MapReduce|Iteration|Streaming")
	procs := flag.Int("n", 2, "worker processes to spawn")
	ft := flag.Bool("ft", false, "enable the key-value library-level checkpoint (fault tolerance)")
	hostfile := flag.String("f", "", "hostfile (accepted for mpidrun compatibility; one host per line overrides -n)")
	tracePath := flag.String("trace", "", "write a Chrome trace_event JSON file of the run to this path")
	counters := flag.Bool("counters", false, "print the runtime counters after the run")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if *hostfile != "" {
		if data, err := os.ReadFile(*hostfile); err == nil {
			n := 0
			for _, line := range strings.Split(string(data), "\n") {
				if strings.TrimSpace(line) != "" {
					n++
				}
			}
			if n > 0 {
				*procs = n
			}
		} else {
			fatal(err)
		}
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mpidrun -O n -A m -M mode <terasort|wordcount|pagerank|kmeans|topk> [params]")
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "mpidrun: pprof:", err)
			}
		}()
		fmt.Fprintf(os.Stderr, "mpidrun: pprof at http://%s/debug/pprof/\n", *pprofAddr)
	}
	app := flag.Arg(0)
	arg := func(i, def int) int {
		if flag.NArg() > i {
			if v, err := strconv.Atoi(flag.Arg(i)); err == nil {
				return v
			}
		}
		return def
	}
	env, err := bench.NewEnv(bench.EnvConfig{Nodes: *procs, BlockSize: 256 << 10})
	if err != nil {
		fatal(err)
	}
	defer env.Close()

	inst := bench.Instr{}
	if *tracePath != "" {
		inst.Trace = trace.New()
	}
	var res *core.Result

	switch app {
	case "terasort":
		records := arg(1, 100000)
		if err := bench.TeraGen(env.FS, "/in", records, 1); err != nil {
			fatal(err)
		}
		opts := bench.TeraSortOpts{NumO: *numO, NumA: *numA, Procs: *procs}
		if *ft {
			dir, err := os.MkdirTemp("", "mpidrun-cp-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
			opts.FaultTolerance = true
			opts.CheckpointDir = dir
			opts.CheckpointRecords = int64(records / 50)
		}
		res, err = bench.DataMPITeraSort(env, "/in", opts, inst)
		if err != nil {
			fatal(err)
		}
		if err := bench.VerifyTeraSort(env.FS, "/in.sorted", records); err != nil {
			fatal(err)
		}
		fmt.Printf("terasort (%s mode, ft=%v): %d records sorted in %v (%d local A tasks, %d remote)\n",
			*mode, *ft, records, res.Elapsed, res.LocalATasks, res.RemoteATasks)
	case "wordcount":
		lines := arg(1, 20000)
		if err := bench.TextGen(env.FS, "/in", lines, 10, 5000, 1); err != nil {
			fatal(err)
		}
		res, err = bench.DataMPIWordCount(env, "/in", *numO, *numA, inst)
		if err != nil {
			fatal(err)
		}
		counts, err := bench.ReadCounts(env.FS, "/in.counts")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wordcount: %d lines, %d distinct words in %v\n", lines, len(counts), res.Elapsed)
	case "pagerank":
		pages, rounds := arg(1, 5000), arg(2, 7)
		g := bench.GenGraph(pages, 8, 1)
		var ranks []float64
		res, ranks, err = bench.DataMPIPageRank(env, g, *numO, *numA, rounds, inst)
		if err != nil {
			fatal(err)
		}
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		fmt.Printf("pagerank: %d pages, %d rounds %v (rank mass %.3f)\n", pages, rounds, res.RoundTimes, sum)
	case "kmeans":
		points, rounds := arg(1, 10000), arg(2, 7)
		pts := bench.GenPoints(points, 8, *numA*2, 1)
		var cents [][]float64
		res, cents, err = bench.DataMPIKMeans(env, pts, *numA*2, *numO, rounds, inst)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("kmeans: %d points, %d centroids, %d rounds %v\n", points, len(cents), rounds, res.RoundTimes)
	case "topk":
		events := arg(1, 5000)
		var lat bench.LatencyCollector
		var top map[string]uint64
		top, res, err = bench.DataMPITopK(env, bench.EventGen(events, 200, 100, 1), 5000, *numO, 10, &lat, inst)
		if err != nil {
			fatal(err)
		}
		l := lat.Latencies()
		fmt.Printf("topk: %d events, p50 latency %v, top-10: %v\n",
			events, bench.Percentile(l, 50), top)
	default:
		fmt.Fprintf(os.Stderr, "mpidrun: unknown application %q\n", app)
		os.Exit(2)
	}

	if *counters && res != nil {
		printCounters(res)
	}
	if inst.Trace != nil {
		if err := inst.Trace.WriteFile(*tracePath); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "mpidrun: trace written to %s (open in chrome://tracing or ui.perfetto.dev)\n", *tracePath)
	}
}

// printCounters renders the runtime counters (and any user counters) as a
// sorted human-readable table.
func printCounters(res *core.Result) {
	section := func(title string, m map[string]int64) {
		if len(m) == 0 {
			return
		}
		fmt.Printf("%s:\n", title)
		keys := make([]string, 0, len(m))
		for k := range m {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Printf("  %-40s %12d\n", k, m[k])
		}
	}
	section("runtime counters", res.RuntimeCounters)
	section("user counters", res.Counters)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpidrun:", err)
	os.Exit(1)
}
