// Command mpidrun is the paper's job launcher (§IV-B):
//
//	mpidrun -f hostfile -O n -A m -M mode -jar jarname classname params
//
// Task code must be resident in the worker processes (the paper loads it
// from the application jar), so this launcher ships with the benchmark
// applications built in and generates their inputs:
//
//	mpidrun -O 8 -A 4 -M MapReduce terasort  [records]
//	mpidrun -O 8 -A 4 -M MapReduce wordcount [lines]
//	mpidrun -O 8 -A 4 -M Iteration pagerank  [pages rounds]
//	mpidrun -O 8 -A 4 -M Iteration kmeans    [points rounds]
//	mpidrun -O 4 -A 2 -M Streaming topk      [events]
//
// -n sets the number of worker processes (the hostfile analogue).
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"datampi/internal/bench"
)

func main() {
	numO := flag.Int("O", 4, "number of tasks in COMM_BIPARTITE_O")
	numA := flag.Int("A", 2, "number of tasks in COMM_BIPARTITE_A")
	mode := flag.String("M", "MapReduce", "mode: Common|MapReduce|Iteration|Streaming")
	procs := flag.Int("n", 2, "worker processes to spawn")
	ft := flag.Bool("ft", false, "enable the key-value library-level checkpoint (fault tolerance)")
	hostfile := flag.String("f", "", "hostfile (accepted for mpidrun compatibility; one host per line overrides -n)")
	flag.Parse()
	if *hostfile != "" {
		if data, err := os.ReadFile(*hostfile); err == nil {
			n := 0
			for _, line := range strings.Split(string(data), "\n") {
				if strings.TrimSpace(line) != "" {
					n++
				}
			}
			if n > 0 {
				*procs = n
			}
		} else {
			fatal(err)
		}
	}
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: mpidrun -O n -A m -M mode <terasort|wordcount|pagerank|kmeans|topk> [params]")
		os.Exit(2)
	}
	app := flag.Arg(0)
	arg := func(i, def int) int {
		if flag.NArg() > i {
			if v, err := strconv.Atoi(flag.Arg(i)); err == nil {
				return v
			}
		}
		return def
	}
	env, err := bench.NewEnv(bench.EnvConfig{Nodes: *procs, BlockSize: 256 << 10})
	if err != nil {
		fatal(err)
	}
	defer env.Close()

	switch app {
	case "terasort":
		records := arg(1, 100000)
		if err := bench.TeraGen(env.FS, "/in", records, 1); err != nil {
			fatal(err)
		}
		opts := bench.TeraSortOpts{NumO: *numO, NumA: *numA, Procs: *procs}
		if *ft {
			dir, err := os.MkdirTemp("", "mpidrun-cp-")
			if err != nil {
				fatal(err)
			}
			defer os.RemoveAll(dir)
			opts.FaultTolerance = true
			opts.CheckpointDir = dir
			opts.CheckpointRecords = int64(records / 50)
		}
		res, err := bench.DataMPITeraSort(env, "/in", opts, bench.Instr{})
		if err != nil {
			fatal(err)
		}
		if err := bench.VerifyTeraSort(env.FS, "/in.sorted", records); err != nil {
			fatal(err)
		}
		fmt.Printf("terasort (%s mode, ft=%v): %d records sorted in %v (%d local A tasks, %d remote)\n",
			*mode, *ft, records, res.Elapsed, res.LocalATasks, res.RemoteATasks)
	case "wordcount":
		lines := arg(1, 20000)
		if err := bench.TextGen(env.FS, "/in", lines, 10, 5000, 1); err != nil {
			fatal(err)
		}
		res, err := bench.DataMPIWordCount(env, "/in", *numO, *numA, bench.Instr{})
		if err != nil {
			fatal(err)
		}
		counts, err := bench.ReadCounts(env.FS, "/in.counts")
		if err != nil {
			fatal(err)
		}
		fmt.Printf("wordcount: %d lines, %d distinct words in %v\n", lines, len(counts), res.Elapsed)
	case "pagerank":
		pages, rounds := arg(1, 5000), arg(2, 7)
		g := bench.GenGraph(pages, 8, 1)
		times, ranks, err := bench.DataMPIPageRank(env, g, *numO, *numA, rounds, bench.Instr{})
		if err != nil {
			fatal(err)
		}
		var sum float64
		for _, r := range ranks {
			sum += r
		}
		fmt.Printf("pagerank: %d pages, %d rounds %v (rank mass %.3f)\n", pages, rounds, times, sum)
	case "kmeans":
		points, rounds := arg(1, 10000), arg(2, 7)
		pts := bench.GenPoints(points, 8, *numA*2, 1)
		times, cents, err := bench.DataMPIKMeans(env, pts, *numA*2, *numO, rounds, bench.Instr{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("kmeans: %d points, %d centroids, %d rounds %v\n", points, len(cents), rounds, times)
	case "topk":
		events := arg(1, 5000)
		var lat bench.LatencyCollector
		top, err := bench.DataMPITopK(env, bench.EventGen(events, 200, 100, 1), 5000, *numO, 10, &lat)
		if err != nil {
			fatal(err)
		}
		l := lat.Latencies()
		fmt.Printf("topk: %d events, p50 latency %v, top-10: %v\n",
			events, bench.Percentile(l, 50), top)
	default:
		fmt.Fprintf(os.Stderr, "mpidrun: unknown application %q\n", app)
		os.Exit(2)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "mpidrun:", err)
	os.Exit(1)
}
