module datampi

go 1.22
